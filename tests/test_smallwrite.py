"""Tests for the related-work small-write mitigations (Parity Logging, AFRAID)."""

import pytest

from repro.errors import ConfigError, DegradedError
from repro.raid import (
    AfraidRaid,
    ParityLoggingRaid,
    RAIDArray,
    RaidLevel,
)


def r5(chunk_pages=4, pages_per_disk=4096):
    return RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=chunk_pages,
                     pages_per_disk=pages_per_disk)


class TestParityLogging:
    def test_small_write_is_one_read_one_write(self):
        pl = ParityLoggingRaid(r5(), log_pages=256, nvram_pages=16)
        ops = pl.write(0)
        assert len(ops) == 2
        assert ops[0].is_read and not ops[1].is_read
        assert ops[0].disk == ops[1].disk  # both touch the data disk only

    def test_stripe_marked_stale_until_reintegration(self):
        pl = ParityLoggingRaid(r5(), log_pages=256, nvram_pages=16)
        pl.write(0)
        assert pl.array.stale_stripes
        pl.flush()
        assert not pl.array.stale_stripes

    def test_nvram_flush_is_sequential_append(self):
        pl = ParityLoggingRaid(r5(), log_pages=256, nvram_pages=4)
        all_ops = []
        for lba in range(4):
            all_ops += pl.write(lba)
        log_ops = [op for op in all_ops if op.disk == pl.log_disk]
        assert len(log_ops) == 1          # one batched append
        assert log_ops[0].npages == 4     # of all four images

    def test_log_full_triggers_reintegration(self):
        pl = ParityLoggingRaid(r5(), log_pages=8, nvram_pages=4)
        for lba in range(12):
            pl.write(lba)
        assert pl.reintegrations >= 1
        assert pl.counters.reintegration_ios > 0

    def test_fewer_random_ios_than_rmw(self):
        """The point of parity logging: less random I/O per small write."""
        pl = ParityLoggingRaid(r5(), log_pages=4096, nvram_pages=64)
        rmw = r5()
        for lba in range(100):
            pl.write(lba)
            rmw.write(lba)
        pl.flush()
        # rmw: 400 member I/Os; parity logging: 200 random + sequential rest
        random_ios = pl.counters.data_reads + pl.counters.data_writes
        assert random_ios == 200
        assert rmw.counters.total == 400

    def test_validation(self):
        with pytest.raises(ConfigError):
            ParityLoggingRaid(r5(), log_pages=4, nvram_pages=8)
        raid0 = RAIDArray(RaidLevel.RAID0, ndisks=4, chunk_pages=4,
                          pages_per_disk=64)
        with pytest.raises(ConfigError):
            ParityLoggingRaid(raid0)

    def test_reads_pass_through(self):
        pl = ParityLoggingRaid(r5())
        ops = pl.read(0)
        assert len(ops) == 1 and ops[0].is_read


class TestAfraid:
    def test_write_is_single_io(self):
        af = AfraidRaid(r5())
        ops = af.write(0)
        assert len(ops) == 1 and not ops[0].is_read

    def test_window_of_vulnerability_grows_then_clears(self):
        af = AfraidRaid(r5(), max_unredundant_stripes=1000)
        stripe_pages = af.array.layout.stripe_data_pages
        for i in range(5):
            af.write(i * stripe_pages)
        assert af.window_of_vulnerability == 5
        af.idle_repair()
        assert af.window_of_vulnerability == 0

    def test_bounded_unredundant_stripes(self):
        af = AfraidRaid(r5(), max_unredundant_stripes=4)
        stripe_pages = af.array.layout.stripe_data_pages
        for i in range(20):
            af.write(i * stripe_pages)
        assert af.window_of_vulnerability <= 5
        assert af.idle_repairs >= 1

    def test_disk_failure_during_window_is_data_loss(self):
        """The availability flaw KDD fixes by keeping deltas in SSD."""
        af = AfraidRaid(r5())
        af.write(0)
        af.array.fail_disk(af.array.layout.locate(0).disk)
        with pytest.raises(DegradedError):
            af.idle_repair()

    def test_validation(self):
        with pytest.raises(ConfigError):
            AfraidRaid(r5(), max_unredundant_stripes=0)


class TestComparisonWithKdd:
    def test_kdd_keeps_redundancy_where_afraid_does_not(self):
        """Same write pattern: AFRAID exposes a window; KDD's window is
        closed by the SSD-resident deltas (resync possible anytime)."""
        from repro.cache import CacheConfig
        from repro.core import KDD

        af = AfraidRaid(r5(), max_unredundant_stripes=1000)
        kdd_raid = r5()
        kdd = KDD(CacheConfig(cache_pages=256, ways=16), kdd_raid)
        for lba in range(50):
            af.write(lba)
            kdd.access(lba, is_read=False)
            kdd.access(lba, is_read=False)  # write hit -> delayed parity
        # both have stale parity now...
        assert af.window_of_vulnerability > 0
        assert kdd_raid.stale_stripes
        # ...but KDD can always repair from cache state without data reads
        kdd.finish()
        assert not kdd_raid.stale_stripes
