"""Flow-sensitive unit taint (RPR104) and the RPR007 lexical fallback.

The dataflow analysis must catch taint laundered through blandly named
locals and across resolved call boundaries — the cases the lexical
kdd-lint rule structurally cannot see — while staying silent on rate
names (``*_per_*``) and explicit conversions.
"""

from repro.devtools.analyze.unitflow import check_units, unit_of_name
from repro.devtools.lint.engine import lint_paths


def codes(findings):
    return sorted({f.code for f in findings})


class TestUnitOfName:
    def test_plain_units(self):
        assert unit_of_name("capacity_bytes") == "bytes"
        assert unit_of_name("dirty_pages") == "pages"
        assert unit_of_name("latency_ms") == "ms"
        assert unit_of_name("warmup_seconds") == "seconds"

    def test_rate_names_are_dimensionless(self):
        assert unit_of_name("ops_per_page") is None
        assert unit_of_name("bytes_per_ms") is None

    def test_ambiguous_and_unknown_names(self):
        assert unit_of_name("pages_bytes") is None
        assert unit_of_name("count") is None


class TestTaintThroughAssignment:
    def test_binop_conflict_direct(self, analyze_tree):
        project = analyze_tree({
            "sim/api.py": """\
                def f(size_bytes, latency_ms):
                    return size_bytes + latency_ms
            """,
        })
        findings = check_units(project)
        assert codes(findings) == ["RPR104"]
        assert "bytes" in findings[0].message
        assert "ms" in findings[0].message

    def test_taint_survives_bland_local(self, analyze_tree):
        """The case the lexical rule cannot see: taint via a plain name."""
        project = analyze_tree({
            "sim/api.py": """\
                def f(size_bytes, dirty_pages):
                    tmp = size_bytes
                    return tmp + dirty_pages
            """,
        })
        findings = check_units(project)
        assert codes(findings) == ["RPR104"]
        assert "pages_for_bytes" in findings[0].message

    def test_assignment_to_unit_named_target(self, analyze_tree):
        project = analyze_tree({
            "sim/api.py": """\
                def f(latency_ms):
                    total_seconds = latency_ms
                    return total_seconds
            """,
        })
        findings = check_units(project)
        assert codes(findings) == ["RPR104"]
        assert "total_seconds" in findings[0].message

    def test_division_clears_taint(self, analyze_tree):
        project = analyze_tree({
            "sim/api.py": """\
                def f(size_bytes, page_size):
                    n_pages = size_bytes // page_size
                    return n_pages
            """,
        })
        assert check_units(project) == []

    def test_branch_merge_requires_agreement(self, analyze_tree):
        project = analyze_tree({
            "sim/api.py": """\
                def f(cond, size_bytes, latency_ms, dirty_pages):
                    if cond:
                        tmp = size_bytes
                    else:
                        tmp = latency_ms
                    return tmp + dirty_pages
            """,
        })
        # tmp is bytes on one arm, ms on the other: merged to unknown,
        # so no conflict may be claimed at the use site.
        assert check_units(project) == []


class TestTaintThroughReturn:
    def test_return_unit_from_function_name(self, analyze_tree):
        project = analyze_tree({
            "sim/api.py": """\
                def total_bytes(latency_ms):
                    tmp = latency_ms
                    return tmp
            """,
        })
        findings = check_units(project)
        assert codes(findings) == ["RPR104"]
        assert "returns" in findings[0].message

    def test_known_converter_return_unit(self, analyze_tree):
        project = analyze_tree({
            "units.py": """\
                def pages_for_bytes(n_bytes, page_size):
                    return -(-n_bytes // page_size)
            """,
            "sim/api.py": """\
                from ..units import pages_for_bytes

                def dirty_pages(size_bytes):
                    return pages_for_bytes(size_bytes, 4096)
            """,
        })
        assert check_units(project) == []


class TestTaintAcrossCalls:
    def test_positional_arg_conflict(self, analyze_tree):
        project = analyze_tree({
            "sim/api.py": """\
                def schedule(delay_ms):
                    return delay_ms

                def f(size_bytes):
                    return schedule(size_bytes)
            """,
        })
        findings = check_units(project)
        assert codes(findings) == ["RPR104"]
        assert "'delay_ms'" in findings[0].message

    def test_keyword_arg_conflict_cross_module(self, analyze_tree):
        project = analyze_tree({
            "engine/core.py": """\
                def submit(op, delay_ms=0):
                    return (op, delay_ms)
            """,
            "sim/api.py": """\
                from ..engine.core import submit

                def f(op, size_bytes):
                    return submit(op, delay_ms=size_bytes)
            """,
        })
        findings = check_units(project)
        assert [f.code for f in findings] == ["RPR104"]
        assert findings[0].relpath == "sim/api.py"

    def test_matching_units_are_silent(self, analyze_tree):
        project = analyze_tree({
            "sim/api.py": """\
                def schedule(delay_ms):
                    return delay_ms

                def f(latency_ms):
                    return schedule(latency_ms)
            """,
        })
        assert check_units(project) == []


class TestLexicalFallback:
    """kdd-lint RPR007 stays as the fast per-file fallback, minus the
    rate-name false positive fixed in this change."""

    def run_rule(self, source, tmp_path):
        path = tmp_path / "repro" / "sim" / "api.py"
        path.parent.mkdir(parents=True)
        path.write_text(source, encoding="utf-8")
        return lint_paths([path], select={"RPR007"})

    def test_rate_name_no_longer_flags(self, tmp_path):
        findings = self.run_rule(
            "def f(n_ops, elapsed_ms):\n"
            "    ops_per_ms = n_ops / elapsed_ms\n"
            "    return ops_per_ms + n_ops\n",
            tmp_path,
        )
        assert findings == []

    def test_real_mixing_still_flags(self, tmp_path):
        findings = self.run_rule(
            "def f(size_bytes, dirty_pages):\n"
            "    return size_bytes + dirty_pages\n",
            tmp_path,
        )
        assert codes(findings) == ["RPR007"]
