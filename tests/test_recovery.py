"""Failure-injection tests: power failure, SSD failure, HDD failure.

These verify the paper's RPO=0 claim (Section III-E): no state is lost
under any single failure, and recovery leaves the system consistent.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig
from repro.core import (
    KDD,
    recover_from_hdd_failure,
    recover_from_power_failure,
    recover_from_ssd_failure,
    verify_recovery,
)
from repro.errors import DegradedError
from repro.nvram import PageState
from repro.raid import RAIDArray, RaidLevel, resync_stale_parity


def make_system(cache_pages=64, **kw):
    raid = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=4, pages_per_disk=4096)
    kw.setdefault("ways", 16)
    kw.setdefault("group_pages", 16)
    kdd = KDD(CacheConfig(cache_pages=cache_pages, **kw), raid)
    return kdd, raid


class TestPowerFailure:
    def test_empty_cache_recovers_empty(self):
        kdd, _ = make_system()
        state = recover_from_power_failure(kdd)
        assert state.cached_pages == 0
        verify_recovery(kdd, state)

    def test_clean_pages_recovered(self):
        kdd, _ = make_system()
        for lba in range(10):
            kdd.read(lba)
        state = recover_from_power_failure(kdd)
        assert state.cached_pages == 10
        assert all(p.state is PageState.CLEAN for p in state.pages.values())
        verify_recovery(kdd, state)

    def test_staged_deltas_make_pages_old(self):
        kdd, _ = make_system()
        kdd.read(5)
        kdd.write(5)  # delta sits in NVRAM staging
        state = recover_from_power_failure(kdd)
        page = state.pages[5]
        assert page.state is PageState.OLD
        assert page.dez_lpn is None  # delta recovered from NVRAM
        verify_recovery(kdd, state)

    def test_committed_deltas_recover_dez_location(self):
        kdd, _ = make_system(cache_pages=256, ways=64,
                             compression_sigma=0.0, mean_compression=0.5)
        for lba in range(3):
            kdd.read(lba)
        for lba in range(3):
            kdd.write(lba)  # two deltas forced into DEZ pages
        state = recover_from_power_failure(kdd)
        dez_backed = [p for p in state.pages.values() if p.dez_lpn is not None]
        assert len(dez_backed) == 2
        verify_recovery(kdd, state)

    def test_evicted_pages_stay_evicted(self):
        kdd, _ = make_system(cache_pages=4, ways=4, group_pages=1)
        for lba in range(6):  # forces evictions in the single set
            kdd.read(lba * 16)
        state = recover_from_power_failure(kdd)
        verify_recovery(kdd, state)

    def test_recovery_after_metadata_log_gc(self):
        kdd, _ = make_system(cache_pages=2048, ways=64,
                             meta_partition_frac=0.004)
        # churn enough metadata to wrap the circular log
        for _round in range(3):
            for lba in range(800):
                kdd.read(lba)
                kdd.write(lba)
        assert kdd.mlog.gc_pages_reclaimed > 0
        state = recover_from_power_failure(kdd)
        verify_recovery(kdd, state)

    @settings(max_examples=15, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(0, 60)),
            min_size=1,
            max_size=250,
        )
    )
    def test_property_recovery_matches_live_map(self, ops):
        """After ANY access sequence, the map rebuilt from flash + NVRAM
        equals the live in-memory primary map."""
        kdd, _ = make_system(cache_pages=32, ways=8, group_pages=8,
                             dirty_threshold=0.5, low_watermark=0.25)
        for is_read, lba in ops:
            kdd.access(lba, is_read)
        state = recover_from_power_failure(kdd)
        verify_recovery(kdd, state)


class TestSsdFailure:
    def test_resync_restores_redundancy(self):
        kdd, raid = make_system(dirty_threshold=1.0, low_watermark=0.5)
        for lba in range(8):
            kdd.read(lba)
            kdd.write(lba)
        assert raid.stale_stripes  # parity is delayed
        report = recover_from_ssd_failure(kdd)
        assert report.stripes_resynced > 0
        assert not raid.stale_stripes
        # array can now lose a disk without data loss
        raid.fail_disk(0)

    def test_no_data_loss_window_with_leavo_counterexample(self):
        """A disk failing while parity is stale is exactly the data-loss
        window; resync closes it."""
        kdd, raid = make_system(dirty_threshold=1.0, low_watermark=0.5)
        kdd.read(0)
        kdd.write(0)
        disk = raid.layout.locate(0).disk
        raid.fail_disk(disk)
        with pytest.raises(DegradedError):
            raid.read(0)  # stale parity + failed disk = unrecoverable
        # (with the cache alive, KDD would flush parity first — see below)

    def test_resync_is_idempotent(self):
        kdd, raid = make_system()
        kdd.read(0)
        kdd.write(0)
        recover_from_ssd_failure(kdd)
        report = recover_from_ssd_failure(kdd)
        assert report.stripes_resynced == 0


class TestHddFailure:
    def test_parity_flushed_before_rebuild(self):
        kdd, raid = make_system(dirty_threshold=1.0, low_watermark=0.5)
        for lba in range(8):
            kdd.read(lba)
            kdd.write(lba)
        assert raid.stale_stripes
        victim = 2
        report = recover_from_hdd_failure(kdd, victim)
        assert not raid.stale_stripes
        assert not raid.degraded
        assert report.pages_rebuilt > 0
        kdd.check_invariants()

    def test_rebuild_reads_survivors(self):
        kdd, raid = make_system()
        kdd.write(0)
        report = recover_from_hdd_failure(kdd, 0, keep_ops=True)
        reads = [op for op in report.disk_ops if op.is_read]
        writes = [op for op in report.disk_ops if not op.is_read]
        assert reads and writes
        assert all(op.disk == 0 for op in writes)
        assert all(op.disk != 0 for op in reads)
