"""Equivalence goldens for the event-engine refactor (repro.engine).

``tests/goldens/timing_goldens.json`` holds two stages:

* ``pre``  — captured once on the pre-refactor tree (ad-hoc clocks in
  ``TimedSystem`` / ``FaultyTimedSystem``); committed, never regenerated.
* ``post`` — the same cells on the engine-backed tree.

The refactor is behaviour-preserving up to three *documented* fixes,
each asserted here explicitly:

1. ``replay_trace`` duration = max(last arrival, last completion), so
   open-loop IOPS can only go *down* (latency columns untouched);
2. the KDD fg_compute critical-path fix: member disk ops wait for the
   foreground compression, adding at most ``compress_time`` (30 us)
   to a request's response — only ``kdd`` rows move, and only upward;
3. ``utilisation`` counts fault stalls/backoffs as busy time, so disk
   busy fractions can only go *up* (the SSD stream injects timeouts as
   extended service, already counted, so its fraction is unchanged
   here).

Everything else — exact-policy latency summaries, fault event logs,
counters, rebuild timing — must be byte-identical, and the current tree
must reproduce the ``post`` stage exactly, single- or multi-process.

(The ``post`` stage also carries the crash-safe DEZ supersede ordering
— see tests/goldens/generate_timing_goldens.py — which moved one
background metadata-write counter in one KDD cell.)
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "goldens"
sys.path.insert(0, str(GOLDEN_DIR))

from generate_timing_goldens import (  # noqa: E402
    COMPUTE_POLICIES,
    EXACT_POLICIES,
    GOLDEN_PATH,
    faults_cells,
    fio_cells,
    replay_cells,
)

#: KDD's on-critical-path compression cost (CacheConfig.compress_time);
#: the fg_compute fix can delay a request by at most this much.
COMPRESS_TIME = 30e-6


@pytest.fixture(scope="module")
def goldens():
    doc = json.loads(GOLDEN_PATH.read_text())
    assert set(doc) == {"pre", "post"}, "run generate_timing_goldens.py"
    return doc


def _pairs(goldens, kind):
    pre, post = goldens["pre"][kind], goldens["post"][kind]
    assert len(pre) == len(post)
    for a, b in zip(pre, post):
        assert (a["policy"], a["workload"]) == (b["policy"], b["workload"])
        yield a, b


def test_exact_policy_replay_rows_identical_except_iops(goldens):
    for a, b in _pairs(goldens, "replay"):
        if a["policy"] not in EXACT_POLICIES:
            continue
        drop = lambda r: {k: v for k, v in r.items() if k != "iops"}  # noqa: E731
        assert drop(a) == drop(b)
        # the duration fix only lengthens the run (queue drain counts)
        assert b["iops"] <= a["iops"]


def test_exact_policy_fio_rows_byte_identical(goldens):
    # closed loop already measured to the last completion: no iops delta
    for a, b in _pairs(goldens, "fio"):
        if a["policy"] in EXACT_POLICIES:
            assert a == b


def test_kdd_rows_carry_bounded_fg_compute_delta(goldens):
    moved = 0
    for kind in ("replay", "fio"):
        for a, b in _pairs(goldens, kind):
            if a["policy"] not in COMPUTE_POLICIES:
                continue
            # fio rows carry an exact mean; replay rows round to 1 us
            if "mean_s" in a:
                mean = lambda r: r["mean_s"]  # noqa: E731
                eps = 1e-12
            else:
                mean = lambda r: r["mean_ms"] * 1e-3  # noqa: E731
                eps = 1.1e-6
            delta = mean(b) - mean(a)
            # serialising compute before member writes can only add time,
            # and at most one compress per request
            assert -eps <= delta <= COMPRESS_TIME + eps
            moved += delta > 0.0
    assert moved > 0, "fg_compute fix should be visible somewhere"


def test_fault_sweep_latency_identical_iops_not_inflated(goldens):
    for a, b in _pairs(goldens, "faults"):
        drop = lambda r: {k: v for k, v in r.items() if k != "iops"}  # noqa: E731
        if a["policy"] in EXACT_POLICIES:
            assert drop(a) == drop(b)
        assert b["iops"] <= a["iops"]


def test_fault_event_log_and_counters_byte_identical(goldens):
    pre, post = goldens["pre"]["faulty_run"], goldens["post"]["faulty_run"]
    for key in ("latency", "mean_exact", "fault_row", "events"):
        assert pre[key] == post[key], key


def test_utilisation_now_counts_fault_stalls(goldens):
    pre = goldens["pre"]["faulty_run"]["utilisation"]
    post = goldens["post"]["faulty_run"]["utilisation"]
    assert set(pre) == set(post)
    assert post["ssd"] == pre["ssd"]
    disks = [d for d in pre if d.startswith("disk")]
    assert all(post[d] >= pre[d] for d in disks)
    assert any(post[d] > pre[d] for d in disks), "stalls should show up"


def test_rebuild_under_load_byte_identical(goldens):
    assert goldens["pre"]["rebuild"] == goldens["post"]["rebuild"]


def test_sweep_rows_stable_across_job_counts(goldens):
    """The engine is deterministic per cell: a 2-process sweep returns
    exactly the single-process golden rows, in the same order."""
    from repro.harness.sweep import SweepEngine

    cells = replay_cells() + fio_cells() + faults_cells()
    rows = [dict(r) for r in SweepEngine(jobs=2).run(cells).rows]
    expected = (goldens["post"]["replay"] + goldens["post"]["fio"]
                + goldens["post"]["faults"])
    assert rows == expected


def test_current_tree_reproduces_post_goldens(goldens):
    """Full regeneration (jobs=1) matches the committed post stage."""
    from generate_timing_goldens import collect

    assert collect() == goldens["post"]
