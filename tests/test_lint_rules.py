"""Per-rule fixture tests for kdd-lint (repro.devtools.lint).

Every rule gets at least one *trigger* snippet (must produce exactly
that rule's code) and one *clean* snippet (must produce nothing), plus
tests for inline suppressions, unused-suppression reporting, baseline
files, and output stability.
"""

import json
import textwrap

import pytest

from repro.devtools.lint import (
    META_CODE,
    Finding,
    apply_baseline,
    lint_source,
    load_baseline,
    parse_suppressions,
    write_baseline,
)
from repro.devtools.lint.cli import main as lint_main
from repro.devtools.lint.rules import REGISTRY
from repro.errors import ConfigError


def codes(src, relpath="core/mod.py", **kwargs):
    src = textwrap.dedent(src)
    return [f.code for f in lint_source(src, relpath=relpath, **kwargs)]


# ---------------------------------------------------------------- registry


def test_registry_has_all_nine_rules():
    assert sorted(REGISTRY) == [f"RPR00{i}" for i in range(1, 10)]


def test_rule_metadata_is_complete():
    for code, rule in REGISTRY.items():
        assert rule.code == code
        assert rule.name
        assert rule.summary


# ---------------------------------------------------------------- RPR001


@pytest.mark.parametrize(
    "snippet",
    [
        "import random\nx = random.random()\n",
        "import random\nrandom.shuffle(items)\n",
        "from random import choice\ny = choice(items)\n",
        "import random\nr = random.Random()\n",
        "import numpy as np\nx = np.random.rand(4)\n",
        "import numpy as np\nnp.random.seed(0)\n",
        "import numpy as np\nrng = np.random.default_rng()\n",
        "from numpy.random import default_rng\nrng = default_rng()\n",
    ],
)
def test_rpr001_triggers(snippet):
    assert codes(snippet) == ["RPR001"]


@pytest.mark.parametrize(
    "snippet",
    [
        "import numpy as np\nrng = np.random.default_rng(7)\n",
        "import numpy as np\nrng = np.random.default_rng(seed)\n",
        "import random\nr = random.Random(42)\n",
        "from numpy.random import default_rng\nrng = default_rng(3)\n",
        # methods on an explicit Generator are seeded by construction
        "def f(rng):\n    return rng.random()\n",
    ],
)
def test_rpr001_clean(snippet):
    assert codes(snippet) == []


# ---------------------------------------------------------------- RPR002


@pytest.mark.parametrize(
    "snippet",
    [
        "import time\nt = time.time()\n",
        "import time\nt = time.perf_counter()\n",
        "from time import perf_counter\nt = perf_counter()\n",
        "import datetime\nnow = datetime.datetime.now()\n",
        "from datetime import datetime\nnow = datetime.now()\n",
    ],
)
@pytest.mark.parametrize("where", ["sim/x.py", "cache/x.py", "raid/x.py",
                                   "core/x.py", "flash/x.py", "delta/x.py",
                                   "nvram/x.py"])
def test_rpr002_triggers_in_sim_dirs(snippet, where):
    assert codes(snippet, relpath=where) == ["RPR002"]


def test_rpr002_allowlists_harness_and_tools():
    snippet = "import time\nt = time.time()\n"
    assert codes(snippet, relpath="harness/cli.py") == []
    assert codes(snippet, relpath="devtools/lint/engine.py") == []
    assert codes(snippet, relpath="traces/trace.py") == []


def test_rpr002_ignores_simulated_time_attributes():
    # attribute access and local variables named `time` are fine
    assert codes("t = req.time\n", relpath="sim/x.py") == []
    assert codes("def f(time):\n    return time + 1\n", relpath="sim/x.py") == []


# ---------------------------------------------------------------- RPR003


@pytest.mark.parametrize(
    "snippet",
    [
        "raise ValueError('bad')\n",
        "raise RuntimeError('bad')\n",
        "raise Exception('bad')\n",
        "def f():\n    raise OSError('bad')\n",
        "raise ValueError\n",
    ],
)
def test_rpr003_triggers(snippet):
    assert codes(snippet) == ["RPR003"]


@pytest.mark.parametrize(
    "snippet",
    [
        "from repro.errors import ConfigError\nraise ConfigError('bad')\n",
        # programming errors propagate unchanged by design
        "raise TypeError('not a Trace')\n",
        "raise NotImplementedError\n",
        "raise AssertionError('unreachable')\n",
        # container/iterator protocol
        "def f(k):\n    raise KeyError(k)\n",
        # bare re-raise
        "try:\n    f()\nexcept ValueError:\n    raise\n",
    ],
)
def test_rpr003_clean(snippet):
    assert codes(snippet) == []


# ---------------------------------------------------------------- RPR004


@pytest.mark.parametrize(
    "snippet",
    [
        "for x in {1, 2, 3}:\n    f(x)\n",
        "for x in set(items):\n    f(x)\n",
        "def g(items):\n    s = {i.key for i in items}\n    for x in s:\n        f(x)\n",
        "def g(a, b):\n    s = set(a) | set(b)\n    for x in s:\n        f(x)\n",
        "ys = [f(x) for x in set(items)]\n",
        "ys = list(set(items))\n",
        "def g(items):\n    s = frozenset(items)\n    return tuple(s)\n",
    ],
)
def test_rpr004_triggers(snippet):
    assert codes(snippet) == ["RPR004"]


@pytest.mark.parametrize(
    "snippet",
    [
        "for x in sorted({1, 2, 3}):\n    f(x)\n",
        "for x in sorted(set(items)):\n    f(x)\n",
        "def g(items):\n    s = set(items)\n    for x in sorted(s):\n        f(x)\n",
        "for x in [1, 2, 3]:\n    f(x)\n",
        "for k in mapping:\n    f(k)\n",  # dicts keep insertion order
        "x = {1, 2} & {2, 3}\n",  # set algebra without iteration
        "ok = 3 in {1, 2, 3}\n",  # membership test, no ordering
    ],
)
def test_rpr004_clean(snippet):
    assert codes(snippet) == []


def test_rpr004_set_binding_is_scoped_per_function():
    src = """
    def f(items):
        s = set(items)
        return len(s)

    def g(s):
        for x in s:   # untracked name: no static set evidence
            yield x
    """
    assert codes(src) == []


# ---------------------------------------------------------------- RPR005


@pytest.mark.parametrize(
    "snippet",
    [
        "ok = x == 0.5\n",
        "ok = 1.0 != y\n",
        "ok = (a / b) == c\n",
        "ok = float(a) == b\n",
    ],
)
def test_rpr005_triggers_in_scoped_dirs(snippet):
    assert codes(snippet, relpath="stats/latency.py") == ["RPR005"]
    assert codes(snippet, relpath="sim/system.py") == ["RPR005"]


def test_rpr005_scoped_out_elsewhere():
    assert codes("ok = x == 0.5\n", relpath="cache/base.py") == []


@pytest.mark.parametrize(
    "snippet",
    [
        "ok = x == 5\n",
        "ok = x < 0.5\n",  # ordering comparisons are fine
        "import math\nok = math.isclose(x, 0.5)\n",
    ],
)
def test_rpr005_clean(snippet):
    assert codes(snippet, relpath="stats/latency.py") == []


# ---------------------------------------------------------------- RPR006


@pytest.mark.parametrize(
    "snippet",
    [
        "def f(xs=[]):\n    return xs\n",
        "def f(xs={}):\n    return xs\n",
        "def f(xs=set()):\n    return xs\n",
        "def f(xs=list()):\n    return xs\n",
        "def f(*, xs=dict()):\n    return xs\n",
        "async def f(xs=[]):\n    return xs\n",
    ],
)
def test_rpr006_triggers(snippet):
    assert codes(snippet) == ["RPR006"]


@pytest.mark.parametrize(
    "snippet",
    [
        "def f(xs=None):\n    return xs or []\n",
        "def f(xs=()):\n    return xs\n",
        "def f(n=4, name='x'):\n    return n\n",
    ],
)
def test_rpr006_clean(snippet):
    assert codes(snippet) == []


# ---------------------------------------------------------------- RPR007


@pytest.mark.parametrize(
    "snippet",
    [
        "total = cache_bytes + cache_pages\n",
        "left = size_bytes - used_pages\n",
        "ok = nbytes < npages\n",
        "ok = obj.nbytes == obj.npages\n",
        "rem = free_bytes % npages\n",
    ],
)
def test_rpr007_triggers(snippet):
    assert codes(snippet) == ["RPR007"]


@pytest.mark.parametrize(
    "snippet",
    [
        # multiplication/division perform the conversion and are exempt
        "total_bytes = npages * page_size\n",
        "npages = total_bytes // page_size\n",
        "total = a_bytes + b_bytes\n",
        "total = a_pages + b_pages\n",
        "ok = nbytes < limit\n",  # untyped operand
    ],
)
def test_rpr007_clean(snippet):
    assert codes(snippet) == []


# ---------------------------------------------------------------- RPR008


@pytest.mark.parametrize(
    "snippet",
    [
        "try:\n    f()\nexcept Exception:\n    pass\n",
        "try:\n    f()\nexcept Exception as exc:\n    log(exc)\n",
        "try:\n    f()\nexcept BaseException:\n    cleanup()\n",
        "try:\n    f()\nexcept:\n    pass\n",
        "try:\n    f()\nexcept (ValueError, Exception):\n    pass\n",
        # a raise inside a nested function does not execute in the handler
        "try:\n    f()\nexcept Exception:\n    def g():\n        raise\n",
    ],
)
def test_rpr008_triggers(snippet):
    got = codes(snippet)
    assert "RPR008" in got
    assert [c for c in got if c != "RPR003"] == ["RPR008"]


@pytest.mark.parametrize(
    "snippet",
    [
        # the ResultCache.put idiom: catch everything, clean up, re-raise
        "try:\n    f()\nexcept BaseException:\n    cleanup()\n    raise\n",
        # conversion into the taxonomy counts as re-raising
        "from repro.errors import SimulationError\n"
        "try:\n    f()\nexcept Exception as exc:\n"
        "    raise SimulationError('boom') from exc\n",
        # conditional re-raise deeper in the handler body still counts
        "try:\n    f()\nexcept Exception as exc:\n"
        "    if fatal(exc):\n        raise\n",
        # specific builtins and taxonomy classes are fine without a raise
        "try:\n    f()\nexcept OSError:\n    pass\n",
        "from repro.errors import ReproError\n"
        "try:\n    f()\nexcept ReproError:\n    pass\n",
        "try:\n    f()\nexcept (ValueError, KeyError):\n    pass\n",
    ],
)
def test_rpr008_clean(snippet):
    assert "RPR008" not in codes(snippet)


def test_rpr008_fires_everywhere_in_the_library():
    snippet = "try:\n    f()\nexcept Exception:\n    pass\n"
    for where in ("harness/sweep.py", "devtools/lint/engine.py",
                  "faults/timed.py", "traces/trace.py"):
        assert "RPR008" in codes(snippet, relpath=where), where


# ---------------------------------------------------------------- RPR009


@pytest.mark.parametrize(
    "snippet",
    [
        "disk.busy_until = finish\n",
        "self.ssd.busy_until += delta\n",
        "a, self.disk.busy_until = 1, finish\n",
        "start = max(earliest, busy)\n",
        "start = max(arrival, disk.busy_until)\n",
    ],
)
def test_rpr009_triggers(snippet):
    assert "RPR009" in codes(snippet, relpath="sim/system.py")


@pytest.mark.parametrize(
    "snippet",
    [
        # reading the clock is fine; only mutation is scheduling
        "if disk.busy_until > t:\n    f()\n",
        # unrelated max() arithmetic (workload sources keep their clocks)
        "clock = max(clock, req.time)\n",
        "end_time = max(end_time, completion)\n",
        "busy_until = 3\n",  # plain local name, not device state
    ],
)
def test_rpr009_clean(snippet):
    assert "RPR009" not in codes(snippet, relpath="sim/system.py")


def test_rpr009_exempts_the_engine_package():
    snippet = "resource.busy_until = finish\nstart = max(earliest, b)\n"
    assert "RPR009" not in codes(snippet, relpath="engine/resources.py")
    assert "RPR009" in codes(snippet, relpath="faults/timed.py")


# ---------------------------------------------------------------- suppressions


def test_inline_suppression_silences_finding():
    src = "raise ValueError('x')  # kdd-lint: disable=RPR003\n"
    assert codes(src) == []


def test_suppression_of_other_code_does_not_apply():
    src = "raise ValueError('x')  # kdd-lint: disable=RPR001\n"
    got = codes(src)
    assert "RPR003" in got and META_CODE in got  # unused RPR001 + real RPR003


def test_suppress_all_on_line():
    src = "raise ValueError('x')  # kdd-lint: disable=all\n"
    assert codes(src) == []


def test_multi_code_suppression():
    src = (
        "import time\n"
        "t = time.time() if a_bytes > b_pages else 0.0  "
        "# kdd-lint: disable=RPR002,RPR007\n"
    )
    assert codes(src, relpath="sim/x.py") == []


def test_unused_suppression_reported():
    src = "x = 1  # kdd-lint: disable=RPR003\n"
    findings = lint_source(src, relpath="core/mod.py")
    assert [f.code for f in findings] == [META_CODE]
    assert "unused suppression of RPR003" in findings[0].message


def test_unknown_code_suppression_reported():
    src = "x = 1  # kdd-lint: disable=RPR999\n"
    findings = lint_source(src, relpath="core/mod.py")
    assert [f.code for f in findings] == [META_CODE]
    assert "unknown rule" in findings[0].message


def test_suppression_inside_string_is_ignored():
    src = 's = "# kdd-lint: disable=RPR003"\nraise ValueError("x")\n'
    assert codes(src) == ["RPR003"]


def test_parse_suppressions_maps_lines():
    src = "x = 1\ny = 2  # kdd-lint: disable=RPR001, RPR004\n"
    assert parse_suppressions(src) == {2: ["RPR001", "RPR004"]}


def test_syntax_error_is_reported_not_raised():
    findings = lint_source("def f(:\n", relpath="core/mod.py")
    assert [f.code for f in findings] == [META_CODE]
    assert "syntax error" in findings[0].message


# ---------------------------------------------------------------- select


def test_select_limits_rules():
    src = "raise ValueError('x')\nfor i in set(xs):\n    f(i)\n"
    assert codes(src, select={"RPR003"}) == ["RPR003"]
    assert codes(src, select={"RPR004"}) == ["RPR004"]


# ---------------------------------------------------------------- baseline


def _findings_for(src, relpath="core/mod.py"):
    return lint_source(textwrap.dedent(src), relpath=relpath)


def test_baseline_roundtrip_filters_grandfathered(tmp_path):
    src = "raise ValueError('a')\n"
    findings = _findings_for(src)
    base = tmp_path / "baseline.json"
    assert write_baseline(base, findings) == 1
    kept, stale = apply_baseline(findings, load_baseline(base))
    assert kept == [] and stale == 0


def test_baseline_does_not_mask_new_findings(tmp_path):
    old = _findings_for("raise ValueError('a')\n")
    base = tmp_path / "baseline.json"
    write_baseline(base, old)
    new = _findings_for("raise ValueError('a')\nraise RuntimeError('b')\n")
    kept, stale = apply_baseline(new, load_baseline(base))
    assert [f.code for f in kept] == ["RPR003"]
    assert "RuntimeError" in kept[0].message
    assert stale == 0


def test_baseline_survives_line_shift(tmp_path):
    old = _findings_for("raise ValueError('a')\n")
    base = tmp_path / "baseline.json"
    write_baseline(base, old)
    shifted = _findings_for("x = 1\n\n\nraise ValueError('a')\n")
    kept, stale = apply_baseline(shifted, load_baseline(base))
    assert kept == [] and stale == 0


def test_baseline_counts_duplicate_lines_separately(tmp_path):
    two = _findings_for("raise ValueError('a')\nraise ValueError('a')\n")
    base = tmp_path / "baseline.json"
    write_baseline(base, two[:1])  # grandfather only one occurrence
    kept, _ = apply_baseline(two, load_baseline(base))
    assert [f.code for f in kept] == ["RPR003"]


def test_stale_baseline_entries_counted(tmp_path):
    old = _findings_for("raise ValueError('a')\n")
    base = tmp_path / "baseline.json"
    write_baseline(base, old)
    kept, stale = apply_baseline([], load_baseline(base))
    assert kept == [] and stale == 1


def test_load_baseline_rejects_garbage(tmp_path):
    bad = tmp_path / "base.json"
    bad.write_text("[1, 2]")
    with pytest.raises(ConfigError):
        load_baseline(bad)
    bad.write_text("not json")
    with pytest.raises(ConfigError):
        load_baseline(bad)


# ---------------------------------------------------------------- CLI & output


def _write_tree(tmp_path):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("raise ValueError('x')\n")
    (pkg / "good.py").write_text("x = 1\n")
    return tmp_path / "repro"


def test_cli_exit_codes(tmp_path, capsys):
    tree = _write_tree(tmp_path)
    assert lint_main([str(tree)]) == 1
    out = capsys.readouterr().out
    assert "RPR003" in out and "bad.py" in out
    assert lint_main([str(tree / "core" / "good.py")]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_missing_path_is_usage_error(tmp_path, capsys):
    assert lint_main([str(tmp_path / "nope")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_cli_unknown_select_code(tmp_path, capsys):
    tree = _write_tree(tmp_path)
    assert lint_main([str(tree), "--select", "RPR9"]) == 2
    assert "unknown rule codes" in capsys.readouterr().err


def test_cli_json_output_is_stable(tmp_path, capsys):
    tree = _write_tree(tmp_path)
    assert lint_main([str(tree), "--format", "json"]) == 1
    first = capsys.readouterr().out
    assert lint_main([str(tree), "--format", "json"]) == 1
    second = capsys.readouterr().out
    assert first == second
    doc = json.loads(first)
    assert doc["counts"] == {"RPR003": 1}
    assert doc["findings"][0]["path"] == "core/bad.py"


def test_cli_baseline_workflow(tmp_path, capsys):
    tree = _write_tree(tmp_path)
    base = tmp_path / "baseline.json"
    assert lint_main([str(tree), "--baseline", str(base),
                      "--update-baseline"]) == 0
    capsys.readouterr()
    assert lint_main([str(tree), "--baseline", str(base)]) == 0
    capsys.readouterr()
    # a new finding is not masked by the baseline
    (tree / "core" / "worse.py").write_text("raise RuntimeError('y')\n")
    assert lint_main([str(tree), "--baseline", str(base)]) == 1
    assert "RuntimeError" in capsys.readouterr().out


def test_cli_update_baseline_requires_baseline(capsys):
    assert lint_main(["--update-baseline"]) == 2
    assert "requires --baseline" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in REGISTRY:
        assert code in out


def test_findings_sorted_deterministically():
    src = "raise ValueError('b')\nraise ValueError('a')\nfor i in set(x):\n    f(i)\n"
    findings = lint_source(textwrap.dedent(src), relpath="core/mod.py")
    assert findings == sorted(findings, key=Finding.sort_key)
    assert [f.line for f in findings] == [1, 2, 3]
