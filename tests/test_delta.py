"""Tests for the delta engine: codec roundtrip, ratio model, DEZ packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta import (
    DELTA_HEADER_BYTES,
    DeltaCodec,
    GaussianDeltaModel,
    LOCALITY_LEVELS,
    mutate_page,
    pack_deltas,
)
from repro.errors import ConfigError


class TestCodec:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        old = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
        new = mutate_page(old, 0.10, rng)
        codec = DeltaCodec()
        delta = codec.encode(old, new)
        assert codec.decode(old, delta) == new

    @settings(max_examples=30)
    @given(st.binary(min_size=64, max_size=256), st.binary(min_size=64, max_size=256))
    def test_roundtrip_property(self, a, b):
        if len(a) != len(b):
            b = (b * (len(a) // len(b) + 1))[: len(a)]
        codec = DeltaCodec()
        assert codec.decode(a, codec.encode(a, b)) == b

    def test_small_changes_compress_well(self):
        """Content locality: a 5% change yields a small delta (Sec. II-C)."""
        rng = np.random.default_rng(1)
        old = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
        small = mutate_page(old, 0.05, rng)
        large = mutate_page(old, 0.80, rng)
        codec = DeltaCodec()
        assert codec.ratio(old, small) < 0.10
        assert codec.ratio(old, small) < codec.ratio(old, large)

    def test_identical_pages_tiny_delta(self):
        old = b"\xab" * 4096
        codec = DeltaCodec()
        assert codec.ratio(old, old) < 0.02

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            DeltaCodec().encode(b"ab", b"abc")

    def test_bad_level_rejected(self):
        with pytest.raises(ConfigError):
            DeltaCodec(level=0)

    def test_mutate_page_fraction_bounds(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigError):
            mutate_page(b"x" * 64, 1.5, rng)
        assert mutate_page(b"x" * 64, 0.0, rng) == b"x" * 64


class TestModel:
    def test_mean_is_respected(self):
        m = GaussianDeltaModel(mean=0.25, seed=1)
        ratios = [m.sample_ratio() for _ in range(5000)]
        assert abs(np.mean(ratios) - 0.25) < 0.01

    def test_clipping(self):
        m = GaussianDeltaModel(mean=0.12, sigma=0.5, seed=2, min_ratio=0.05)
        ratios = [m.sample_ratio() for _ in range(2000)]
        assert min(ratios) >= 0.05
        assert max(ratios) <= 1.0

    def test_sample_size_in_bytes(self):
        m = GaussianDeltaModel(mean=0.5, sigma=0.0, page_size=4096, seed=0)
        assert m.sample_size() == 2048

    @pytest.mark.parametrize("level,mean", sorted(LOCALITY_LEVELS.items()))
    def test_for_locality(self, level, mean):
        assert GaussianDeltaModel.for_locality(level).mean == mean

    def test_unknown_locality(self):
        with pytest.raises(ConfigError):
            GaussianDeltaModel.for_locality("extreme")

    def test_invalid_mean(self):
        with pytest.raises(ConfigError):
            GaussianDeltaModel(mean=0.0)

    def test_deterministic_with_seed(self):
        a = GaussianDeltaModel(mean=0.25, seed=9)
        b = GaussianDeltaModel(mean=0.25, seed=9)
        assert [a.sample_size() for _ in range(10)] == [
            b.sample_size() for _ in range(10)
        ]


class TestPacker:
    def test_pack_within_page(self):
        page = pack_deltas([(1, 1000, None), (2, 1000, None), (3, 1000, None)], 4096)
        assert page.valid_count == 3
        offsets = [d.offset for d in page.deltas]
        assert offsets == sorted(offsets)
        # headers accounted: first delta starts after its header
        assert page.deltas[0].offset == DELTA_HEADER_BYTES

    def test_pack_overflow_rejected(self):
        with pytest.raises(ConfigError):
            pack_deltas([(1, 3000, None), (2, 3000, None)], 4096)

    def test_single_incompressible_delta_truncates_to_page(self):
        page = pack_deltas([(1, 4096, None)], 4096)
        assert page.deltas[0].length == 4096 - DELTA_HEADER_BYTES

    def test_invalidate_counts_down(self):
        page = pack_deltas([(1, 100, None), (2, 100, None)], 4096)
        assert page.invalidate(1) == 1
        assert page.invalidate(1) == 1  # idempotent
        assert page.invalidate(2) == 0

    def test_find_valid_only(self):
        page = pack_deltas([(7, 100, None)], 4096)
        assert page.find(7).lba == 7
        page.invalidate(7)
        with pytest.raises(KeyError):
            page.find(7)
