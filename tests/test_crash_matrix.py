"""Crash-consistency matrix: every persistence boundary, RPO=0.

The harness (:mod:`repro.faults.crash`) enumerates every crash point
the production code announces, recovers at each one and proves the
recovered map equals the live map restricted to acknowledged writes.
These tests pin the coverage contract from the outside:

* the matrix's covered kind set equals :data:`CRASH_POINT_KINDS`
  exactly — no registered kind goes unexercised;
* the kind literals at the production call sites equal the registry —
  a new ``shim.point`` call with a new kind fails here (and at runtime,
  via the shim's own check) until the registry and matrix grow with it;
* torn flash phases are synthesised and verified;
* armed replays (real exception unwinding) agree with capture mode at
  every boundary;
* the verifier itself has teeth: a tampered crash image raises
  :class:`RecoveryError` naming the boundary.

The Hypothesis properties extend the fixed matrix to random workloads
and random armed indices; under ``HYPOTHESIS_PROFILE=ci`` they run
derandomized (see ``tests/conftest.py``).
"""

import json
import re
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recovery import recover_from_power_failure
from repro.errors import RecoveryError, SimulatedPowerFailure
from repro.faults.crash import (
    CRASH_POINT_KINDS,
    FLASH_POINT_KINDS,
    CrashBoundary,
    CrashPointShim,
    _build_kdd,
    attach_crash_shim,
    crash_workload,
    detach_crash_shim,
    run_crash_matrix,
    snapshot_crash_image,
    verify_crash_recovery,
)

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


@pytest.fixture(scope="module")
def report():
    """One full matrix run: capture pass + one armed replay per boundary.

    160 accesses against the deliberately tiny ``_build_kdd`` stack hit
    staging flushes, DEZ commits, cleaning, forced cleaning and
    metadata-log wraparound/GC — every registered kind.
    """
    return run_crash_matrix(accesses=160, seed=0, armed_stride=1)


class TestMatrixCoverage:
    def test_every_registered_kind_covered(self, report):
        assert report.covered == set(CRASH_POINT_KINDS)

    def test_torn_flash_phases_exercised(self, report):
        assert report.torn_boundaries > 0
        assert {"nvram", "before", "torn", "after"} <= set(report.phase_counts)

    def test_armed_replay_fired_at_every_boundary(self, report):
        assert report.boundaries > 0
        assert report.armed_runs == report.boundaries

    def test_row_is_json_friendly(self, report):
        row = json.loads(json.dumps(report.row()))
        assert row["boundaries"] == report.boundaries
        assert set(row["kinds"]) == set(CRASH_POINT_KINDS)


class TestRegistryIsClosed:
    """A persistence step cannot escape coverage (both directions)."""

    def _source_kinds(self, method: str) -> set[str]:
        pattern = re.compile(r"\.shim\." + method + r"\(\s*\"(\w+)\"")
        kinds: set[str] = set()
        for path in sorted(SRC.rglob("*.py")):
            kinds.update(pattern.findall(path.read_text(encoding="utf-8")))
        return kinds

    def test_call_site_literals_equal_the_registry(self):
        points = self._source_kinds("point")
        flash = self._source_kinds("flash_point")
        assert flash == set(FLASH_POINT_KINDS)
        assert points | flash == set(CRASH_POINT_KINDS)
        assert not points & flash

    def test_unregistered_kind_rejected_at_runtime(self):
        shim = attach_crash_shim(_build_kdd(0))
        with pytest.raises(RecoveryError, match="unregistered"):
            shim.point("warp_core_dump")

    def test_flash_point_requires_flash_registration(self):
        kdd = _build_kdd(0)
        shim = attach_crash_shim(kdd)
        with pytest.raises(RecoveryError, match="not a registered flash point"):
            shim.flash_point("meta_put", kdd.mlog, 0, ())

    def test_txn_suppresses_nvram_points(self):
        shim = attach_crash_shim(_build_kdd(0))
        with shim.txn():
            shim.point("meta_put", lba=1)
        assert shim.index == 0 and not shim.boundaries

    def test_flash_program_inside_txn_rejected(self):
        kdd = _build_kdd(0)
        shim = attach_crash_shim(kdd)
        with shim.txn():
            with pytest.raises(RecoveryError, match="inside an NVRAM"):
                shim.flash_point("mlog_commit", kdd.mlog, 0, ())

    def test_mode_validation(self):
        kdd = _build_kdd(0)
        with pytest.raises(RecoveryError):
            CrashPointShim(kdd, mode="bogus")
        with pytest.raises(RecoveryError):
            CrashPointShim(kdd, mode="armed", arm_index=None)


class TestVerifierTeeth:
    """The RPO=0 proof is only as good as the verifier's failure mode."""

    def _loaded(self, seed=1, accesses=80):
        kdd = _build_kdd(seed)
        for lba, is_read in crash_workload(accesses, seed):
            kdd.access(lba, is_read)
        return kdd

    def test_quiescent_snapshot_recovers_cleanly(self):
        kdd = self._loaded()
        kdd.finish()
        image = snapshot_crash_image(kdd)
        boundary = CrashBoundary(0, "meta_put", "nvram", ())
        verify_crash_recovery(kdd, image.recover(), None, boundary)

    def test_tampered_image_raises_naming_the_boundary(self):
        kdd = self._loaded()
        image = snapshot_crash_image(kdd)
        # Mid-workload there is always unflushed NVRAM state to lose.
        assert image.metabuffer or image.committing or image.staging
        tampered = replace(
            image, metabuffer=(), committing=(), relocating=(), staging=()
        )
        boundary = CrashBoundary(7, "meta_put", "nvram", (("lba", 3),))
        with pytest.raises(RecoveryError) as excinfo:
            verify_crash_recovery(kdd, tampered.recover(), None, boundary)
        assert "meta_put" in str(excinfo.value)


class TestCrashProperties:
    """Random workloads and random armed indices, derandomized in CI."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16 - 1), accesses=st.integers(24, 64))
    def test_capture_proves_rpo0_on_random_workloads(self, seed, accesses):
        workload = crash_workload(accesses, seed, universe=64)
        kdd = _build_kdd(seed)
        shim = attach_crash_shim(kdd, mode="capture")
        for lba, is_read in workload:
            shim.in_flight = lba
            kdd.access(lba, is_read)  # raises RecoveryError on any RPO>0
        shim.in_flight = None
        kdd.finish()
        detach_crash_shim(kdd)
        kdd.check_invariants()
        assert shim.index == len(shim.boundaries) > 0
        assert {b.kind for b in shim.boundaries} <= set(CRASH_POINT_KINDS)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**16 - 1), pick=st.integers(0, 2**31 - 1))
    def test_armed_crash_at_random_boundary_recovers(self, seed, pick):
        accesses = 40
        workload = crash_workload(accesses, seed, universe=64)
        # Capture pass: enumerate the boundary sequence for this seed.
        probe = _build_kdd(seed)
        shim = attach_crash_shim(probe, mode="capture")
        for lba, is_read in workload:
            shim.in_flight = lba
            probe.access(lba, is_read)
        shim.in_flight = None
        probe.finish()
        detach_crash_shim(probe)
        arm = pick % shim.index
        # Armed replay: crash there, recover from the unwound object.
        kdd = _build_kdd(seed)
        armed = attach_crash_shim(kdd, mode="armed", arm_index=arm)
        with pytest.raises(SimulatedPowerFailure):
            for lba, is_read in workload:
                armed.in_flight = lba
                kdd.access(lba, is_read)
            armed.in_flight = None
            kdd.finish()
        assert armed.tripped is not None
        assert armed.tripped.same_site(shim.boundaries[arm])
        recovered = recover_from_power_failure(kdd)
        verify_crash_recovery(
            kdd,
            recovered,
            armed.tripped_in_flight,
            armed.tripped,
            expected=armed.expected,
        )
