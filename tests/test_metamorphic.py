"""Metamorphic sanity properties across the whole policy zoo.

These encode relations that must hold regardless of parameters — the
kind of checks that catch accounting bugs no single-policy unit test
sees.
"""

import pytest

from repro.harness import POLICIES, simulate_policy
from repro.traces import zipf_workload

TRACE = zipf_workload(6000, 1200, alpha=1.0, read_ratio=0.4, seed=20,
                      name="meta")

CACHED_POLICIES = [p for p in POLICIES if p != "nossd"]


@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_access_conservation(policy):
    """Hits + misses always equals the page-access count."""
    r = simulate_policy(policy, TRACE, cache_pages=256, seed=1)
    s = r.stats
    assert s.accesses == 6000
    assert s.hits + s.read_misses + s.write_misses == 6000


@pytest.mark.parametrize("policy", sorted(CACHED_POLICIES))
def test_bigger_cache_never_much_worse(policy):
    """Doubling the cache must not meaningfully hurt the hit ratio."""
    small = simulate_policy(policy, TRACE, cache_pages=128, seed=1)
    large = simulate_policy(policy, TRACE, cache_pages=512, seed=1)
    assert large.hit_ratio >= small.hit_ratio - 0.05, policy


@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_deterministic_across_runs(policy):
    a = simulate_policy(policy, TRACE, cache_pages=256, seed=3)
    b = simulate_policy(policy, TRACE, cache_pages=256, seed=3)
    assert a.ssd_write_pages == b.ssd_write_pages
    assert a.hit_ratio == b.hit_ratio
    assert a.raid.total == b.raid.total


@pytest.mark.parametrize("policy", sorted(CACHED_POLICIES))
def test_no_policy_loses_writes(policy):
    """Every logical write must reach RAID by the end of the run (the
    write-back family flushes in finish()), except pure write-back
    semantics where acked writes reach RAID via flush too."""
    r = simulate_policy(policy, TRACE, cache_pages=256, seed=1)
    assert r.raid.data_writes >= 1
    # no stale parity may survive a finished run
    assert not simulate_policy(policy, TRACE, cache_pages=256, seed=1).extras.get(
        "stale_stripes", 0
    )


def test_kdd_dominates_leavo_on_writes_everywhere():
    for cache in (128, 256, 512):
        kdd = simulate_policy("kdd", TRACE, cache_pages=cache, seed=1)
        leavo = simulate_policy("leavo", TRACE, cache_pages=cache, seed=1)
        assert kdd.ssd_write_pages < leavo.ssd_write_pages, cache


def test_wa_floor_holds_for_all_policies():
    """Write-around is the endurance floor among RPO=0 policies."""
    wa = simulate_policy("wa", TRACE, cache_pages=256, seed=1)
    for policy in ("wt", "leavo", "kdd"):
        r = simulate_policy(policy, TRACE, cache_pages=256, seed=1)
        assert wa.ssd_write_pages <= r.ssd_write_pages, policy
