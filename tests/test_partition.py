"""Per-tenant cache partitioning: plans, routing, dynamic reallocation.

Partition quotas split one cache across tenant directories; dynamic
mode moves quota through the public ``alloc`` surface only, so the
mirror-coherence contracts and cache invariants must hold across every
resize, and the endurance cost of migration shows up in ``ssd_writes``.
"""

import pytest

from repro.cache import CacheConfig, PartitionPlan, PartitionedCache
from repro.errors import ConfigError
from repro.harness.runner import build_policy
from repro.raid.array import RAIDArray


def make_raid(pages_per_disk=512):
    return RAIDArray(ndisks=5, chunk_pages=16,
                     pages_per_disk=pages_per_disk)


def make_partition(n_tenants=2, cache_pages=128, policy="wt",
                   dynamic=False, **plan_kwargs):
    plan = PartitionPlan.equal(n_tenants, dynamic=dynamic, **plan_kwargs)
    raid = make_raid()
    policies = [
        build_policy(policy, CacheConfig(cache_pages=quota, ways=16, seed=0),
                     raid)
        for quota in plan.quotas(cache_pages)
    ]
    return PartitionedCache(policies, plan, total_pages=cache_pages)


class TestPartitionPlanValidation:
    def test_zero_tenant_plan_rejected(self):
        with pytest.raises(ConfigError, match="zero-tenant"):
            PartitionPlan(fractions=())

    def test_nonpositive_fraction_names_the_index(self):
        with pytest.raises(ConfigError, match=r"fractions\[1\]"):
            PartitionPlan(fractions=(0.5, 0.0))

    def test_fractions_over_one_rejected(self):
        with pytest.raises(ConfigError, match="sum to <= 1"):
            PartitionPlan(fractions=(0.7, 0.7))

    def test_bad_realloc_period(self):
        with pytest.raises(ConfigError, match="realloc_period"):
            PartitionPlan.equal(2, realloc_period=0)

    def test_bad_min_fraction(self):
        with pytest.raises(ConfigError, match="min_fraction"):
            PartitionPlan.equal(4, min_fraction=0.5)

    def test_bad_ewma_alpha(self):
        with pytest.raises(ConfigError, match="ewma_alpha"):
            PartitionPlan.equal(2, ewma_alpha=1.5)

    def test_equal_requires_a_tenant(self):
        with pytest.raises(ConfigError, match="n_tenants"):
            PartitionPlan.equal(0)

    def test_quotas_floor_at_one_page(self):
        plan = PartitionPlan.equal(3)
        assert plan.quotas(3) == (1, 1, 1)
        with pytest.raises(ConfigError, match="total_pages"):
            plan.quotas(2)


class TestPartitionedCacheConstruction:
    def test_policy_count_must_match_plan(self):
        plan = PartitionPlan.equal(3)
        raid = make_raid()
        policies = [
            build_policy("wt", CacheConfig(cache_pages=16, seed=0), raid)
            for _ in range(2)
        ]
        with pytest.raises(ConfigError, match="3 tenants"):
            PartitionedCache(policies, plan, total_pages=64)

    def test_directories_cannot_exceed_total(self):
        plan = PartitionPlan.equal(2)
        raid = make_raid()
        policies = [
            build_policy("wt", CacheConfig(cache_pages=64, seed=0), raid)
            for _ in range(2)
        ]
        with pytest.raises(ConfigError, match="exceeding total_pages"):
            PartitionedCache(policies, plan, total_pages=64 + 16)

    def test_dynamic_requires_clean_line_policy(self):
        plan = PartitionPlan.equal(2, dynamic=True)
        raid = make_raid()
        policies = [
            build_policy("wb", CacheConfig(cache_pages=32, seed=0), raid)
            for _ in range(2)
        ]
        with pytest.raises(ConfigError, match="clean-line"):
            PartitionedCache(policies, plan, total_pages=128)

    def test_non_set_assoc_policy_rejected(self):
        plan = PartitionPlan.equal(1)
        raid = make_raid()
        policies = [build_policy("nossd", CacheConfig(cache_pages=32, seed=0),
                                 raid)]
        with pytest.raises(ConfigError, match="set-associative"):
            PartitionedCache(policies, plan, total_pages=64)


class TestRoutingAndStats:
    def test_routing_isolates_tenants(self):
        cache = make_partition(n_tenants=2, cache_pages=128)
        for lba in range(16):
            cache.access(0, lba, True)
        assert cache.policies[0].stats.accesses == 16
        assert cache.policies[1].stats.accesses == 0

    def test_combined_stats_sum_tenants(self):
        cache = make_partition(n_tenants=2, cache_pages=128)
        for lba in range(8):
            cache.access(0, lba, True)
            cache.access(1, 100 + lba, False)
        cache.finish()
        combined = cache.combined_stats()
        per = [p.stats for p in cache.policies]
        assert combined.accesses == sum(s.accesses for s in per)
        assert combined.ssd_writes == sum(s.ssd_writes for s in per)
        cache.check_invariants()


class TestDynamicReallocation:
    def _churn(self, cache, rounds=6):
        """Tenant 0 hot, reusing 8 pages spread across set groups;
        tenant 1 cold-scans fresh pages every round."""
        for r in range(rounds):
            for i in range(48):
                cache.access(0, (i % 8) * 64, True)
                cache.access(1, 1024 + r * 48 + i, True)

    def test_quota_moves_toward_hit_density(self):
        cache = make_partition(n_tenants=2, cache_pages=128, dynamic=True,
                               realloc_period=64, min_fraction=0.1)
        before = cache.quotas
        self._churn(cache)
        cache.finish()
        assert cache.realloc.passes > 0
        assert cache.realloc.resizes > 0
        after = cache.quotas
        assert after[0] > before[0]  # the hot tenant gained quota
        assert sum(after) <= cache.total_pages
        assert cache.realloc.final_quotas == list(after)

    def test_invariants_hold_across_resizes(self):
        cache = make_partition(n_tenants=2, cache_pages=128, dynamic=True,
                               realloc_period=64, min_fraction=0.1)
        self._churn(cache)
        cache.check_invariants()
        for policy, quota in zip(cache.policies, cache.quotas):
            assert policy.sets.capacity_pages == quota

    def test_migration_charges_fill_writes(self):
        cache = make_partition(n_tenants=2, cache_pages=128, dynamic=True,
                               realloc_period=64, min_fraction=0.1)
        self._churn(cache)
        stats = cache.realloc
        assert stats.migrated_lines > 0
        # every migrated line cost one counted SSD fill write
        fills = sum(p.stats.fill_writes for p in cache.policies)
        assert fills >= stats.migrated_lines

    def test_static_plan_never_reallocates(self):
        cache = make_partition(n_tenants=2, cache_pages=128, dynamic=False)
        self._churn(cache)
        cache.finish()
        assert cache.realloc.passes == 0
        assert cache.quotas == tuple(
            PartitionPlan.equal(2).quotas(128))
