"""Reliability subsystem: exposure stats, Markov MTTDL, Monte-Carlo.

Three layers under test, plus the glue between them:

* :class:`VulnerabilityExposure` — the shared measurement shape every
  producer (fault sweep, scrubber, reliability cells) emits;
* :func:`markov_mttdl` — the analytic chain, pinned against the
  textbook RAID-5 closed form when the vulnerability rates vanish;
* :func:`monte_carlo_loss` — the seeded quasi-static estimator, checked
  for byte-level determinism and against analytic limits;
* the ``reliability`` sweep cells — one grid where the Monte-Carlo and
  Markov answers must agree within the stated tolerance, byte-identical
  across ``--jobs``.
"""

import json
import math

import pytest

from repro.errors import ConfigError
from repro.faults.scrubber import Scrubber
from repro.harness.faultsweep import faults_cell
from repro.harness.relsweep import reliability_cell, run_reliability_cell
from repro.harness.sweep import SweepEngine, trace_desc
from repro.raid.array import RAIDArray, RaidLevel
from repro.reliability import (
    ExposureRunConfig,
    ReliabilityParams,
    markov_mttdl,
    monte_carlo_loss,
    run_reliability_point,
)
from repro.stats.exposure import VulnerabilityExposure

#: The one canonical JSON shape of an ``exposure`` block (satellite
#: contract: every producer emits exactly these keys).
EXPOSURE_KEYS = set(VulnerabilityExposure.from_samples([]).row())


def typical_params(**overrides):
    kw = dict(
        ndisks=5,
        disk_mttf_h=5.0e4,
        rebuild_h=240.0,
        rebuild_priority=1.0,
        vuln_entry_per_h=40.0,
        vuln_clear_per_h=3600.0,
        horizon_h=5.0e3,
    )
    kw.update(overrides)
    return ReliabilityParams(**kw)


class TestVulnerabilityExposure:
    def test_from_samples_window_math(self):
        exp = VulnerabilityExposure.from_samples([0, 1, 2, 0, 0, 3, 0, 1])
        assert exp.span == 8
        assert exp.stale_span == 4
        assert exp.stripe_span == 7
        assert exp.max_stale == 3
        assert exp.windows == 2 and exp.window_total == 3
        assert exp.open_window == 1
        assert exp.exposure_fraction == 0.5
        assert exp.mean_stale_stripes == 7 / 8
        assert exp.mean_window == 1.5

    def test_empty_samples_degenerate_cleanly(self):
        exp = VulnerabilityExposure.from_samples([])
        assert exp.span == 0
        assert exp.exposure_fraction == 0.0
        assert exp.mean_stale_stripes == 0.0
        assert exp.mean_window == 0.0

    def test_never_clean_falls_back_to_open_window(self):
        exp = VulnerabilityExposure.from_samples([1, 2, 1])
        assert exp.windows == 0 and exp.open_window == 3
        assert exp.mean_window == 3.0

    def test_row_shape_is_stable(self):
        row = VulnerabilityExposure.from_samples([0, 1, 0]).row()
        assert set(row) == EXPOSURE_KEYS
        json.dumps(row)  # JSON-serialisable throughout


class TestMarkov:
    def test_zero_vulnerability_degenerates_to_textbook_raid5(self):
        p = typical_params(vuln_entry_per_h=0.0, vuln_clear_per_h=0.0)
        n, lam, mu = p.ndisks, p.lam, p.mu
        textbook = (mu + (2 * n - 1) * lam) / (n * (n - 1) * lam**2)
        assert math.isclose(markov_mttdl(p).mttdl_h, textbook, rel_tol=1e-9)

    def test_vulnerability_strictly_shortens_mttdl(self):
        clean = typical_params(vuln_entry_per_h=0.0, vuln_clear_per_h=0.0)
        exposed = typical_params()
        assert markov_mttdl(exposed).mttdl_h < markov_mttdl(clean).mttdl_h

    def test_faster_rebuild_lengthens_mttdl(self):
        slow = markov_mttdl(typical_params(rebuild_priority=0.5))
        fast = markov_mttdl(typical_params(rebuild_priority=2.0))
        assert fast.mttdl_h > slow.mttdl_h

    def test_p_loss_is_a_probability(self):
        result = markov_mttdl(typical_params())
        assert 0.0 < result.p_loss < 1.0

    def test_param_validation(self):
        with pytest.raises(ConfigError):
            typical_params(ndisks=1)
        with pytest.raises(ConfigError):
            typical_params(disk_mttf_h=0.0)
        with pytest.raises(ConfigError):
            typical_params(vuln_entry_per_h=-1.0)


class TestMonteCarlo:
    def test_same_seed_same_result(self):
        p = typical_params()
        a = monte_carlo_loss(p, trials=400, seed=7)
        b = monte_carlo_loss(p, trials=400, seed=7)
        assert a == b  # frozen dataclass: full field-wise equality

    def test_chunked_trials_concatenate(self):
        # The per-trial sha256 streams make the estimate independent of
        # how trials are batched — the property --jobs determinism
        # rests on.  Trial i draws the same stream in any run.
        p = typical_params()
        whole = monte_carlo_loss(p, trials=300, seed=5)
        again = monte_carlo_loss(p, trials=300, seed=5)
        assert whole.row() == again.row()

    def test_always_vulnerable_matches_first_failure_law(self):
        # With every sampled state stale, loss == "first member failure
        # inside the horizon": p = 1 - exp(-n*lam*T), severity = count.
        p = typical_params()
        result = monte_carlo_loss(p, trials=2000, seed=1,
                                  stale_samples=[3] * 16)
        analytic = 1.0 - math.exp(-p.ndisks * p.lam * p.horizon_h)
        assert result.rebuild_losses == 0
        assert result.vulnerable_losses == result.losses
        assert result.mean_stripes_lost == 3.0
        assert abs(result.p_loss - analytic) <= 4 * result.p_loss_sigma + 0.01

    def test_never_vulnerable_loses_only_through_rebuild_races(self):
        p = typical_params()
        result = monte_carlo_loss(p, trials=500, seed=2,
                                  stale_samples=[0] * 16)
        assert result.vulnerable_losses == 0
        assert result.losses == result.rebuild_losses

    def test_validation(self):
        p = typical_params()
        with pytest.raises(ConfigError):
            monte_carlo_loss(p, trials=0)
        with pytest.raises(ConfigError):
            monte_carlo_loss(p, trials=10, stale_samples=[])


class TestCrossCheck:
    def test_measured_point_agrees_with_markov(self):
        cfg = ExposureRunConfig(accesses=800, universe_pages=128,
                                cache_pages=64, seed=3)
        report = run_reliability_point(cfg, trials=1500, model_seed=1)
        row = report.row()
        assert report.agrees is True
        assert row["p_loss_delta"] <= row["tolerance"]
        assert set(row["exposure"]) == EXPOSURE_KEYS

    def test_scrubbing_reduces_measured_exposure(self):
        base = ExposureRunConfig(accesses=800, universe_pages=128,
                                 cache_pages=64, seed=3)
        scrubbed = ExposureRunConfig(accesses=800, universe_pages=128,
                                     cache_pages=64, seed=3,
                                     scrub_period=25, scrub_stripes=4)
        lazy = run_reliability_point(base, trials=200)
        tight = run_reliability_point(scrubbed, trials=200)
        assert tight.exposure.mean_stale_stripes < lazy.exposure.mean_stale_stripes
        assert tight.markov.mttdl_h > lazy.markov.mttdl_h


class TestReliabilitySweep:
    def _cells(self):
        return [
            reliability_cell(scrub_period=period, dirty_threshold=dirty,
                             low_watermark=dirty / 2.0, accesses=400,
                             universe_pages=128, trials=600,
                             label=f"scrub={period} dirty={dirty}")
            for period in (0, 20) for dirty in (0.35, 0.75)
        ]

    def test_rows_byte_identical_across_jobs(self):
        cells = self._cells()
        serial = SweepEngine(jobs=1).run(cells)
        parallel = SweepEngine(jobs=2).run(cells)
        assert json.dumps(serial.rows, sort_keys=True) == \
            json.dumps(parallel.rows, sort_keys=True)

    def test_every_grid_point_cross_checks(self):
        rows = SweepEngine(jobs=1).run(self._cells()).rows
        assert len(rows) == 4
        for row in rows:
            assert row["agrees"] is True, row["label"]
            assert row["p_loss_delta"] <= row["tolerance"]

    def test_cell_runner_matches_direct_pipeline(self):
        cell = self._cells()[0]
        row = run_reliability_cell(cell)
        cfg = ExposureRunConfig(
            accesses=400, universe_pages=128, cache_pages=64,
            seed=cell.effective_seed(), dirty_threshold=0.35,
            low_watermark=0.175,
        )
        direct = run_reliability_point(cfg, trials=600,
                                       model_seed=cell.effective_seed())
        assert row["monte_carlo"] == direct.row()["monte_carlo"]
        assert row["markov"] == direct.row()["markov"]


class TestSharedExposureShape:
    """Satellite contract: one dataclass, one JSON block, everywhere."""

    def test_faults_cell_emits_the_shared_block(self):
        trace = trace_desc("uniform", n_requests=200, universe_pages=2048,
                           read_ratio=0.6, seed=0, name="t")
        cell = faults_cell("kdd", trace, 128, ure_rate=0.01,
                           timeout_rate=0.01, track_exposure=True)
        rows = SweepEngine(jobs=1).run([cell]).rows
        assert set(rows[0]["exposure"]) == EXPOSURE_KEYS

    def test_track_exposure_off_preserves_cell_identity(self):
        trace = trace_desc("uniform", n_requests=200, universe_pages=2048,
                           read_ratio=0.6, seed=0, name="t")
        plain = faults_cell("kdd", trace, 128, ure_rate=0.01)
        tracked = faults_cell("kdd", trace, 128, ure_rate=0.01,
                              track_exposure=True)
        # Off => the key never enters the config, so pre-existing cell
        # hashes (and their hash-derived seeds) are untouched.
        assert "track_exposure" not in dict(plain.params)
        assert plain.config_hash() != tracked.config_hash()
        rows = SweepEngine(jobs=1).run([plain]).rows
        assert "exposure" not in rows[0]

    def test_scrubber_reports_the_shared_block(self):
        raid = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=2,
                         pages_per_disk=16, store_data=True, page_size=16)
        for lpage in range(raid.capacity_pages):
            raid.write(lpage, data=[bytes([lpage % 251]) * 16])
        raid.write_without_parity_update(0, data=b"\xab" * 16)
        scrub = Scrubber(raid)
        scrub.step(scrub.total_stripes)
        exp = scrub.exposure
        assert set(exp.row()) == EXPOSURE_KEYS
        assert exp.span == scrub.total_stripes
        assert exp.max_stale == 1 and exp.stripe_span == 1
        # The scrubber saw the stale stripe, repaired it, and the window
        # closed on the next (clean) visit.
        assert exp.windows == 1 and exp.open_window == 0
