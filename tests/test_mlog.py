"""Tests for the circular persistent metadata log."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.mlog import MetadataLog
from repro.errors import ConfigError, RecoveryError
from repro.nvram import MappingEntry, PageState


def make_log(capacity=8, entries_per_page=4, gc_threshold=0.9):
    # page_size/entry_bytes chooses entries per page
    return MetadataLog(
        None,
        base_lpn=0,
        capacity_pages=capacity,
        entry_bytes=16,
        gc_threshold=gc_threshold,
        page_size=16 * entries_per_page,
    )


def clean(lba):
    return MappingEntry(lba_raid=lba, state=PageState.CLEAN, lba_daz=lba)


def free(lba):
    return MappingEntry(lba_raid=lba, state=PageState.FREE)


def test_buffered_entries_commit_per_page():
    log = make_log(entries_per_page=4)
    for lba in range(4):
        log.record(clean(lba))
    assert log.meta_page_writes == 0  # buffer holds exactly one page
    log.record(clean(4))
    assert log.meta_page_writes == 1
    assert log.used_pages == 1


def test_coalescing_in_buffer_saves_writes():
    log = make_log(entries_per_page=4)
    for _ in range(20):
        log.record(clean(7))  # same page over and over
    assert log.meta_page_writes == 0


def test_replay_returns_latest_entry_per_page():
    log = make_log(entries_per_page=2)
    log.record(clean(1))
    log.record(clean(2))
    log.record(free(1))
    log.record(clean(3))
    log.commit()
    mapping = log.replay()
    assert mapping[1].state is PageState.FREE
    assert mapping[2].state is PageState.CLEAN
    assert mapping[3].state is PageState.CLEAN


def test_replay_plus_buffer_equals_full_state():
    log = make_log(entries_per_page=2)
    log.record(clean(1))
    log.record(clean(2))
    log.record(clean(3))  # 1,2 committed; 3 still buffered
    mapping = log.replay()
    assert 3 not in mapping
    for e in log.buffer.snapshot():
        mapping[e.lba_raid] = e
    assert mapping[3].state is PageState.CLEAN


def test_gc_relocates_live_entries():
    log = make_log(capacity=8, entries_per_page=2, gc_threshold=0.5)
    # one cold entry written once, then churn over hot entries: GC must
    # relocate the cold entry when its page reaches the head
    log.record(clean(100))
    for i in range(40):
        log.record(clean(i % 3))
    log.commit()
    log.check_invariants()
    assert log.gc_pages_reclaimed > 0
    assert log.gc_entries_relocated > 0
    mapping = log.replay()
    for e in log.buffer.snapshot():
        mapping[e.lba_raid] = e
    live = {lba for lba, e in mapping.items() if e.state is not PageState.FREE}
    assert live == {0, 1, 2, 100}


def test_free_tombstones_are_dropped_at_gc():
    """Regression test: tombstones must not accumulate until the log
    livelocks at 100% liveness."""
    log = make_log(capacity=6, entries_per_page=4, gc_threshold=0.8)
    # cache churn: allocate + free thousands of distinct pages
    for lba in range(3000):
        log.record(clean(lba))
        log.record(free(lba))
    log.commit()
    log.check_invariants()
    mapping = log.replay()
    for e in log.buffer.snapshot():
        mapping[e.lba_raid] = e
    assert all(e.state is PageState.FREE for e in mapping.values())


def test_log_too_small_for_live_set_raises():
    log = make_log(capacity=4, entries_per_page=2)
    with pytest.raises(RecoveryError):
        for lba in range(200):
            log.record(clean(lba))  # 200 live entries >> 8 slots


def test_utilisation_stays_under_threshold_after_commit():
    log = make_log(capacity=10, entries_per_page=2, gc_threshold=0.6)
    for lba in range(10):
        log.record(clean(lba % 5))
    log.commit()
    assert log.utilisation <= 0.6 + 1e-9


def test_head_tail_monotonic():
    log = make_log(capacity=4, entries_per_page=2)
    for lba in range(16):
        log.record(clean(lba % 3))
    assert 0 <= log.head <= log.tail
    assert log.used_pages <= 4


def test_capacity_validation():
    with pytest.raises(ConfigError):
        make_log(capacity=2)
    with pytest.raises(ConfigError):
        MetadataLog(None, 0, 8, gc_threshold=0.3)


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, 30)), min_size=1, max_size=400
    )
)
def test_property_replay_matches_reference(ops):
    """Replay + NVRAM buffer always equals a reference dict of the
    latest state per page."""
    log = make_log(capacity=8, entries_per_page=4, gc_threshold=0.9)
    reference: dict[int, PageState] = {}
    for is_free, lba in ops:
        entry = free(lba) if is_free else clean(lba)
        log.record(entry)
        reference[lba] = entry.state
    log.check_invariants()
    mapping = log.replay()
    for e in log.buffer.snapshot():
        mapping[e.lba_raid] = e
    recovered = {lba: e.state for lba, e in mapping.items()}
    # FREE pages may be absent entirely (dropped tombstones) — both mean free
    for lba, state in reference.items():
        if state is PageState.FREE:
            assert recovered.get(lba, PageState.FREE) is PageState.FREE
        else:
            assert recovered.get(lba) is state
