"""RNG-stream provenance (RPR105 shared streams, RPR106 module globals).

Every ``numpy.random.Generator`` must be constructed per device or per
sweep cell from a derived seed and owned by exactly one consumer; the
analysis must catch sharing through attribute stores, aliases, and
retaining call boundaries while staying silent on the sanctioned
one-stream-per-owner loop pattern.
"""

from repro.devtools.analyze.rngflow import check_rng_provenance


def codes(findings):
    return sorted({f.code for f in findings})


class TestSharedStream:
    def test_stream_stored_into_two_attributes(self, analyze_tree):
        project = analyze_tree({
            "faults/sched.py": """\
                import numpy as np

                class Pipeline:
                    def wire(self, seed):
                        rng = np.random.default_rng(seed)
                        self.disk_rng = rng
                        self.flash_rng = rng
            """,
        })
        findings = check_rng_provenance(project)
        assert codes(findings) == ["RPR105"]
        assert "'rng'" in findings[0].message
        assert "2 owners" in findings[0].message

    def test_alias_does_not_launder_the_stream(self, analyze_tree):
        project = analyze_tree({
            "faults/sched.py": """\
                import numpy as np

                class Pipeline:
                    def wire(self, seed):
                        rng = np.random.default_rng(seed)
                        shared = rng
                        self.disk_rng = rng
                        self.flash_rng = shared
            """,
        })
        findings = check_rng_provenance(project)
        assert codes(findings) == ["RPR105"]

    def test_stream_shared_via_retaining_callee(self, analyze_tree):
        project = analyze_tree({
            "disk/model.py": """\
                class Disk:
                    def __init__(self, rng):
                        self.rng = rng
            """,
            "faults/sched.py": """\
                import numpy as np

                from ..disk.model import Disk

                def build(seed):
                    rng = np.random.default_rng(seed)
                    return Disk(rng), Disk(rng)
            """,
        })
        findings = check_rng_provenance(project)
        assert codes(findings) == ["RPR105"]
        assert "repro.disk.model:Disk.__init__" in findings[0].message

    def test_subscript_registry_counts_as_owner(self, analyze_tree):
        project = analyze_tree({
            "faults/sched.py": """\
                import numpy as np

                def build(seed, registry):
                    rng = np.random.default_rng(seed)
                    registry["disk0"] = rng
                    registry["disk1"] = rng
                    return registry
            """,
        })
        assert codes(check_rng_provenance(project)) == ["RPR105"]

    def test_per_device_loop_is_clean(self, analyze_tree):
        """The sanctioned pattern: one fresh derived stream per owner."""
        project = analyze_tree({
            "faults/sched.py": """\
                import numpy as np

                class Disk:
                    def __init__(self, rng):
                        self.rng = rng

                def build(seed, n):
                    disks = []
                    for i in range(n):
                        rng = np.random.default_rng((seed, i))
                        disks.append(Disk(rng))
                    return disks
            """,
        })
        assert check_rng_provenance(project) == []

    def test_non_retaining_callee_is_not_a_sink(self, analyze_tree):
        project = analyze_tree({
            "faults/sched.py": """\
                import numpy as np

                def draw(rng):
                    return rng.integers(0, 10)

                def build(seed):
                    rng = np.random.default_rng(seed)
                    a = draw(rng)
                    b = draw(rng)
                    return a + b
            """,
        })
        assert check_rng_provenance(project) == []

    def test_stream_class_construction_tracked(self, analyze_tree):
        """A project class that builds a Generator in __init__ is itself
        a stream source; sharing one instance across owners is RPR105."""
        project = analyze_tree({
            "faults/stream.py": """\
                import numpy as np

                class FaultStream:
                    def __init__(self, seed):
                        self._rng = np.random.default_rng(seed)
            """,
            "faults/sched.py": """\
                from .stream import FaultStream

                class Pipeline:
                    def wire(self, seed):
                        stream = FaultStream(seed)
                        self.disk_stream = stream
                        self.flash_stream = stream
            """,
        })
        assert codes(check_rng_provenance(project)) == ["RPR105"]

    def test_stream_returning_helper_tracked(self, analyze_tree):
        project = analyze_tree({
            "faults/stream.py": """\
                import numpy as np

                def derive_rng(seed, label):
                    return np.random.default_rng((seed, label))
            """,
            "faults/sched.py": """\
                from .stream import derive_rng

                class Pipeline:
                    def wire(self, seed):
                        rng = derive_rng(seed, "disk")
                        self.disk_rng = rng
                        self.flash_rng = rng
            """,
        })
        assert codes(check_rng_provenance(project)) == ["RPR105"]


class TestModuleScope:
    def test_module_global_stream_is_rpr106(self, analyze_tree):
        project = analyze_tree({
            "faults/sched.py": """\
                import numpy as np

                RNG = np.random.default_rng(1234)
            """,
        })
        findings = check_rng_provenance(project)
        assert codes(findings) == ["RPR106"]
        assert "module scope" in findings[0].message

    def test_from_import_constructor_form(self, analyze_tree):
        project = analyze_tree({
            "faults/sched.py": """\
                from numpy.random import default_rng

                RNG = default_rng(1234)
            """,
        })
        assert codes(check_rng_provenance(project)) == ["RPR106"]

    def test_seed_constant_at_module_scope_is_fine(self, analyze_tree):
        project = analyze_tree({
            "faults/sched.py": """\
                DEFAULT_SEED = 1234
            """,
        })
        assert check_rng_provenance(project) == []


class TestServeSeedProvenance:
    """RPR111: serve-layer streams must be seeded via sha256."""

    def test_raw_seed_in_serve_is_rpr111(self, analyze_tree):
        project = analyze_tree({
            "serve/composer.py": """\
                import numpy as np

                class Composer:
                    def cell(self, seed, epoch):
                        rng = np.random.default_rng((seed, epoch))
                        return rng.random()
            """,
        })
        findings = check_rng_provenance(project)
        assert codes(findings) == ["RPR111"]
        assert "sha256" in findings[0].message

    def test_unseeded_serve_stream_is_rpr111(self, analyze_tree):
        project = analyze_tree({
            "serve/composer.py": """\
                import numpy as np

                def draw():
                    return np.random.default_rng().random()
            """,
        })
        assert codes(check_rng_provenance(project)) == ["RPR111"]

    def test_inline_sha256_seed_is_clean(self, analyze_tree):
        project = analyze_tree({
            "serve/composer.py": """\
                import hashlib

                import numpy as np

                def cell(seed, tid):
                    digest = hashlib.sha256(f"{seed}:{tid}".encode())
                    rng = np.random.default_rng(
                        int(digest.hexdigest()[:16], 16)
                    )
                    return rng.random()
            """,
        })
        assert check_rng_provenance(project) == []

    def test_project_hashing_helper_is_clean(self, analyze_tree):
        """A seed routed through a helper that transitively hashes."""
        project = analyze_tree({
            "serve/seeds.py": """\
                import hashlib

                def substream_seed(seed, tid):
                    digest = hashlib.sha256(f"{seed}:{tid}".encode())
                    return int(digest.hexdigest()[:16], 16)

                def epoch_seed(seed, tid, epoch):
                    return (substream_seed(seed, tid), epoch)
            """,
            "serve/composer.py": """\
                import numpy as np

                from .seeds import epoch_seed

                def cell(seed, tid, epoch):
                    rng = np.random.default_rng(epoch_seed(seed, tid, epoch))
                    return rng.random()
            """,
        })
        assert check_rng_provenance(project) == []

    def test_local_name_carries_the_derivation(self, analyze_tree):
        project = analyze_tree({
            "serve/seeds.py": """\
                import hashlib

                def substream_seed(seed, tid):
                    digest = hashlib.sha256(f"{seed}:{tid}".encode())
                    return int(digest.hexdigest()[:16], 16)
            """,
            "serve/composer.py": """\
                import numpy as np

                from .seeds import substream_seed

                def cell(seed, tid, epoch):
                    sub = substream_seed(seed, tid)
                    rng = np.random.default_rng((sub, epoch + 1))
                    return rng.random()
            """,
        })
        assert check_rng_provenance(project) == []

    def test_hashed_self_method_is_clean(self, analyze_tree):
        project = analyze_tree({
            "serve/composer.py": """\
                import hashlib

                import numpy as np

                class Composer:
                    def _sub(self, tid):
                        digest = hashlib.sha256(tid.encode())
                        return int(digest.hexdigest()[:16], 16)

                    def cell(self, tid):
                        rng = np.random.default_rng(self._sub(tid))
                        return rng.random()
            """,
        })
        assert check_rng_provenance(project) == []

    def test_raw_seed_outside_serve_is_not_rpr111(self, analyze_tree):
        """The obligation is scoped: other layers keep plain derived
        seeds (the fault scheduler's (seed, i) tuples stay legal)."""
        project = analyze_tree({
            "faults/sched.py": """\
                import numpy as np

                def cell(seed, epoch):
                    rng = np.random.default_rng((seed, epoch))
                    return rng.random()
            """,
        })
        assert check_rng_provenance(project) == []
