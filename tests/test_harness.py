"""Tests for the simulation runner, report rendering, and CLI."""

import pytest

from repro.cache import CacheConfig
from repro.errors import ConfigError
from repro.harness import (
    POLICIES,
    build_policy,
    make_raid_for_trace,
    render_table,
    simulate_policy,
)
from repro.harness.cli import main as cli_main
from repro.harness.report import FigureResult
from repro.raid import RaidLevel
from repro.traces import uniform_workload, zipf_workload


@pytest.fixture(scope="module")
def small_trace():
    return zipf_workload(3000, 1500, alpha=1.0, read_ratio=0.3, seed=5,
                         name="small")


class TestRunner:
    def test_all_policies_run(self, small_trace):
        for name in POLICIES:
            r = simulate_policy(name, small_trace, cache_pages=256, seed=1)
            assert r.policy == name
            assert r.stats.accesses == 3000

    def test_unknown_policy_rejected(self, small_trace):
        with pytest.raises(ConfigError):
            simulate_policy("arc", small_trace, 256)

    def test_unknown_config_field_rejected(self, small_trace):
        with pytest.raises(ConfigError):
            simulate_policy("wt", small_trace, 256, not_a_field=1)

    def test_raid_covers_trace_address_space(self, small_trace):
        raid = make_raid_for_trace(small_trace)
        assert raid.capacity_pages > small_trace.max_page

    def test_raid_levels(self, small_trace):
        for level in (RaidLevel.RAID0, RaidLevel.RAID1, RaidLevel.RAID5,
                      RaidLevel.RAID6):
            ndisks = 6 if level is RaidLevel.RAID6 else 5
            raid = make_raid_for_trace(small_trace, level=level, ndisks=ndisks)
            assert raid.capacity_pages > small_trace.max_page

    def test_kdd_extras_populated(self, small_trace):
        r = simulate_policy("kdd", small_trace, 256, seed=1)
        assert "cleanings" in r.extras
        assert "dez_pages" in r.extras

    def test_flash_model_gives_waf(self):
        trace = uniform_workload(800, 200, read_ratio=0.2, seed=2)
        r = simulate_policy("wt", trace, cache_pages=128, flash_model=True)
        assert r.extras["write_amplification"] >= 1.0

    def test_row_shape(self, small_trace):
        row = simulate_policy("wt", small_trace, 256).row()
        for key in ("policy", "workload", "cache_pages", "hit_ratio",
                    "ssd_write_pages", "raid_reads", "raid_writes"):
            assert key in row

    def test_deterministic_given_seed(self, small_trace):
        a = simulate_policy("kdd", small_trace, 256, seed=3)
        b = simulate_policy("kdd", small_trace, 256, seed=3)
        assert a.ssd_write_pages == b.ssd_write_pages
        assert a.hit_ratio == b.hit_ratio

    def test_unknown_policy_kwarg_rejected(self, small_trace):
        with pytest.raises(ConfigError) as exc:
            simulate_policy("wt", small_trace, 256,
                            policy_kwargs={"bogus_kw": 1})
        assert "wt" in str(exc.value)
        assert "bogus_kw" in str(exc.value)

    def test_unknown_policy_kwarg_rejected_via_build_policy(self, small_trace):
        raid = make_raid_for_trace(small_trace)
        config = CacheConfig(cache_pages=256)
        with pytest.raises(ConfigError):
            build_policy("kdd", config, raid, not_an_option=True)


class TestEmptyTrace:
    """Degenerate traces must stay well-defined end to end."""

    @pytest.fixture()
    def empty_trace(self):
        from repro.traces import Trace, empty_records

        return Trace(empty_records(0), name="empty")

    def test_max_page_and_duration_defined(self, empty_trace):
        assert len(empty_trace) == 0
        assert empty_trace.max_page == 0
        assert empty_trace.duration == 0.0

    def test_stats_all_zero(self, empty_trace):
        stats = empty_trace.stats()
        assert stats.requests == 0
        assert stats.unique_pages == 0
        assert stats.read_ratio == 0.0

    def test_make_raid_returns_minimal_valid_array(self, empty_trace):
        raid = make_raid_for_trace(empty_trace)
        assert raid.capacity_pages > 0
        # still whole stripes, so normal I/O paths work
        assert raid.capacity_pages % raid.layout.chunk_pages == 0

    def test_simulate_policy_runs(self, empty_trace):
        for name in ("wt", "kdd", "nossd"):
            r = simulate_policy(name, empty_trace, cache_pages=64)
            assert r.stats.accesses == 0
            assert r.hit_ratio == 0.0


class TestReport:
    def test_render_table_alignment(self):
        rows = [{"a": 1, "bb": "xy"}, {"a": 222, "bb": "z"}]
        text = render_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len({len(l) for l in lines[:2]}) == 1  # header and rule align

    def test_render_empty(self):
        assert render_table([]) == "(no rows)"

    def test_series_grouping(self):
        fig = FigureResult("f", "t", rows=[
            {"x": 2, "y": 20, "k": "a"},
            {"x": 1, "y": 10, "k": "a"},
            {"x": 1, "y": 30, "k": "b"},
        ])
        s = fig.series("x", "y", "k")
        assert s["a"] == [(1, 10), (2, 20)]  # sorted by x
        assert s["b"] == [(1, 30)]

    def test_series_unknown_column(self):
        fig = FigureResult("f", "t", rows=[{"x": 1}])
        with pytest.raises(ConfigError):
            fig.series("x", "nope", "x")

    def test_render_includes_notes(self):
        fig = FigureResult("f", "title", rows=[{"x": 1}], notes=["hello"])
        assert "hello" in fig.render()


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "table1" in out

    def test_unknown_figure(self, capsys):
        assert cli_main(["run", "fig99"]) == 2

    def test_run_table1(self, capsys):
        assert cli_main(["run", "table1", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "Fin1" in out and "Web0" in out
