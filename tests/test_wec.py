"""Tests for WEC (write-efficient caching retention)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig, WecWriteThrough
from repro.errors import ConfigError
from repro.raid import RAIDArray, RaidLevel
from repro.traces import zipf_workload


def make_wec(cache_pages=16, ways=None, protect_threshold=2,
             max_protected_fraction=0.5, **kw):
    raid = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=4,
                     pages_per_disk=1 << 14)
    cfg = CacheConfig(cache_pages=cache_pages, ways=ways or cache_pages,
                      group_pages=1, **kw)
    return WecWriteThrough(cfg, raid, protect_threshold=protect_threshold,
                           max_protected_fraction=max_protected_fraction)


class TestProtection:
    def test_write_hits_build_score_to_protection(self):
        p = make_wec(protect_threshold=2)
        p.write(5)          # miss: allocates
        p.write(5)          # hit: score 1
        assert not p.is_protected(5)
        p.write(5)          # hit: score 2 -> protected
        assert p.is_protected(5)
        assert p.protections == 1

    def test_protected_lines_survive_eviction_pressure(self):
        p = make_wec(cache_pages=4, protect_threshold=1)
        p.write(1)
        p.write(1)  # write-efficient: protected
        for lba in range(10, 14):  # fills + evicts
            p.read(lba * 64)
        assert 1 in p.sets  # the write-efficient page stayed
        p.check_invariants()

    def test_unprotected_evicted_first(self):
        p = make_wec(cache_pages=3, protect_threshold=1)
        p.write(1)
        p.write(1)   # protected
        p.read(2 * 64)
        p.read(3 * 64)
        p.read(4 * 64)  # evicts 2 or 3, never 1
        assert 1 in p.sets

    def test_decay_when_everything_protected(self):
        p = make_wec(cache_pages=2, protect_threshold=1,
                     max_protected_fraction=1.0)
        for lba in (1, 2):
            p.write(lba)
            p.write(lba)
        assert p.protected_pages == 2
        p.read(9 * 64)  # must still find room: pins decay
        assert len(p.sets) <= 2
        assert p.decays > 0
        p.check_invariants()

    def test_protected_fraction_capped(self):
        p = make_wec(cache_pages=8, protect_threshold=1)
        for lba in range(8):
            p.write(lba)
            p.write(lba)
        assert p.protected_pages <= 4  # max 50% by default

    def test_validation(self):
        raid = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=4,
                         pages_per_disk=1 << 10)
        with pytest.raises(ConfigError):
            WecWriteThrough(CacheConfig(cache_pages=8), raid,
                            protect_threshold=0)
        with pytest.raises(ConfigError):
            WecWriteThrough(CacheConfig(cache_pages=8), raid,
                            max_protected_fraction=0.0)


class TestEffectiveness:
    def test_wec_keeps_write_hot_pages_longer(self):
        """On a stream mixing a write-hot set with a read scan, WEC
        serves more write hits than plain WT."""
        from repro.harness import simulate_policy
        import numpy as np
        from repro.traces import Trace
        from repro.traces.record import empty_records

        rng = np.random.default_rng(3)
        n = 6000
        rec = empty_records(n)
        scan = 0
        for i in range(n):
            if rng.random() < 0.4:
                # write-hot set of 40 pages
                rec[i] = (float(i), int(rng.integers(0, 40)), 1, False)
            else:
                scan += 1
                rec[i] = (float(i), 1000 + scan, 1, True)  # one-touch scan
        trace = Trace(rec, name="scan+hot")

        wt = simulate_policy("wt", trace, cache_pages=64, seed=1)
        wec = simulate_policy("wec-wt", trace, cache_pages=64, seed=1)
        assert wec.stats.write_hits >= wt.stats.write_hits


@settings(max_examples=20, deadline=None)
@given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 30)),
                    max_size=150))
def test_property_wec_invariants(ops):
    p = make_wec(cache_pages=8, protect_threshold=2)
    for is_read, lba in ops:
        p.access(lba, is_read)
    p.check_invariants()
    # protected set only references cached pages
    for lba in list(p._protected):
        assert lba in p.sets
