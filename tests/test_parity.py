"""Property-based tests for RAID parity math: P, Q, recovery, deltas."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RaidError
from repro.raid import (
    apply_delta_to_p,
    compute_p,
    compute_q,
    recover_one_data,
    recover_two_data,
    update_p,
    verify_stripe,
    xor_blocks,
)

BLOCK = 32


def blocks(n_min=2, n_max=6):
    return st.lists(
        st.binary(min_size=BLOCK, max_size=BLOCK).map(
            lambda b: np.frombuffer(b, dtype=np.uint8)
        ),
        min_size=n_min,
        max_size=n_max,
    )


@given(blocks())
def test_p_then_any_single_loss_recovers(data):
    p = compute_p(data)
    for lost in range(len(data)):
        survivors = [d for i, d in enumerate(data) if i != lost]
        rec = recover_one_data(survivors, p)
        assert np.array_equal(rec, data[lost])


@given(blocks(n_min=3, n_max=6))
@settings(max_examples=50)
def test_p_q_recover_any_two_losses(data):
    p = compute_p(data)
    q = compute_q(data)
    n = len(data)
    for x in range(n):
        for y in range(x + 1, n):
            surviving = {i: d for i, d in enumerate(data) if i not in (x, y)}
            dx, dy = recover_two_data(surviving, p, q, x, y, n)
            assert np.array_equal(dx, data[x])
            assert np.array_equal(dy, data[y])


@given(blocks())
def test_verify_stripe_detects_corruption(data):
    p = compute_p(data)
    q = compute_q(data)
    assert verify_stripe(data, p, q)
    bad = p.copy()
    bad[0] ^= 0xFF
    assert not verify_stripe(data, bad)
    bad_q = q.copy()
    bad_q[-1] ^= 0x01
    assert not verify_stripe(data, p, bad_q)


@given(blocks(), st.binary(min_size=BLOCK, max_size=BLOCK))
def test_rmw_update_p_equals_recompute(data, new_bytes):
    new_block = np.frombuffer(new_bytes, dtype=np.uint8)
    p = compute_p(data)
    updated = update_p(p, data[0], new_block)
    recomputed = compute_p([new_block] + list(data[1:]))
    assert np.array_equal(updated, recomputed)


@given(blocks(n_min=3, n_max=5), st.data())
def test_delta_repair_equals_recompute(data, draw):
    """KDD cleaner invariant: stale P ^ (old^new deltas) == fresh P."""
    stale_p = compute_p(data)
    new_data = list(data)
    deltas = []
    # change an arbitrary subset of blocks
    for i in range(len(data)):
        if draw.draw(st.booleans()):
            nb = np.frombuffer(
                draw.draw(st.binary(min_size=BLOCK, max_size=BLOCK)), dtype=np.uint8
            )
            deltas.append(data[i] ^ nb)
            new_data[i] = nb
    if not deltas:
        return
    repaired = apply_delta_to_p(stale_p, deltas)
    assert np.array_equal(repaired, compute_p(new_data))


def test_mismatched_lengths_rejected():
    with pytest.raises(RaidError):
        xor_blocks([np.zeros(4, np.uint8), np.zeros(5, np.uint8)])
    with pytest.raises(RaidError):
        xor_blocks([])


def test_recover_two_rejects_bad_indices():
    data = [np.zeros(BLOCK, np.uint8) for _ in range(4)]
    p, q = compute_p(data), compute_q(data)
    with pytest.raises(RaidError):
        recover_two_data({0: data[0], 1: data[1]}, p, q, 2, 2, 4)
    with pytest.raises(RaidError):
        recover_two_data({i: data[i] for i in range(3)}, p, q, 2, 3, 4)
