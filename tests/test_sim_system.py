"""Tests for the full-system timing composition and the two load models."""

import pytest

from repro.cache import CacheConfig
from repro.errors import ConfigError
from repro.harness import build_policy, make_raid_for_trace
from repro.raid import RAIDArray, RaidLevel
from repro.sim import FioConfig, TimedSystem, replay_trace, run_closed_loop
from repro.traces import uniform_workload, zipf_workload


def make_system(policy_name="wt", cache_pages=256, ndisks=5, **cfg_kw):
    raid = RAIDArray(RaidLevel.RAID5, ndisks=ndisks, chunk_pages=4,
                     pages_per_disk=1 << 16)
    cfg = CacheConfig(cache_pages=cache_pages, **cfg_kw)
    policy = build_policy(policy_name, cfg, raid)
    return TimedSystem(policy)


class TestTimedSystem:
    def test_read_hit_is_fast(self):
        sys_ = make_system("wt")
        sys_.submit(5, 1, is_read=True, arrival=0.0)   # miss: disk read
        done = sys_.submit(5, 1, is_read=True, arrival=10.0)  # hit: SSD read
        assert done - 10.0 < 1e-3  # sub-millisecond

    def test_read_miss_pays_disk(self):
        sys_ = make_system("wt")
        done = sys_.submit(5, 1, is_read=True, arrival=0.0)
        assert done > 3e-3  # seek + rotation

    def test_small_write_pays_two_disk_phases(self):
        sys_ = make_system("nossd")
        t_write = sys_.submit(5, 1, is_read=False, arrival=0.0)
        sys2 = make_system("nossd")
        t_read = sys2.submit(5, 1, is_read=True, arrival=0.0)
        # rmw (read then write phases) is roughly twice a plain read
        assert t_write > 1.5 * t_read

    def test_kdd_write_hit_faster_than_wt(self):
        """The headline latency claim: no parity I/O on KDD's write hits."""
        wt = make_system("wt")
        kdd = make_system("kdd")
        for s in (wt, kdd):
            s.submit(5, 1, is_read=True, arrival=0.0)  # cache the page
        t_wt = wt.submit(5, 1, is_read=False, arrival=1.0) - 1.0
        t_kdd = kdd.submit(5, 1, is_read=False, arrival=1.0) - 1.0
        assert t_kdd < 0.7 * t_wt

    def test_background_work_delays_later_requests(self):
        sys_ = make_system("wt")
        # a read miss schedules a background fill on the SSD
        sys_.submit(5, 1, is_read=True, arrival=0.0)
        busy = sys_.ssd.busy_until
        assert busy > 0.0  # the fill occupied the device

    def test_multi_page_request_single_response(self):
        sys_ = make_system("wt")
        sys_.submit(0, 8, is_read=True, arrival=0.0)
        assert len(sys_.recorder) == 1

    def test_negative_arrival_rejected(self):
        sys_ = make_system("wt")
        with pytest.raises(ConfigError):
            sys_.submit(0, 1, True, -1.0)

    def test_report_contents(self):
        sys_ = make_system("wt")
        sys_.submit(0, 1, True, 0.0)
        rep = sys_.report("test", duration=1.0)
        assert rep.requests == 1
        assert rep.iops == pytest.approx(1.0)
        assert rep.latency.mean > 0


class TestOpenLoop:
    def test_replay_measures_all_requests(self):
        trace = uniform_workload(200, 2000, read_ratio=0.5, iops=50, seed=1)
        sys_ = make_system("wt")
        rep = replay_trace(sys_, trace)
        assert rep.requests == 200
        assert rep.latency.mean > 0

    def test_max_requests_cutoff(self):
        trace = uniform_workload(200, 2000, iops=50, seed=1)
        rep = replay_trace(make_system("wt"), trace, max_requests=50)
        assert rep.requests == 50

    def test_max_seconds_cutoff(self):
        trace = uniform_workload(500, 2000, iops=100, seed=1)
        rep = replay_trace(make_system("wt"), trace, max_seconds=1.0)
        assert rep.requests < 500

    def test_time_scale_reduces_queueing(self):
        trace = uniform_workload(300, 2000, read_ratio=0.0, iops=2000, seed=1)
        fast = replay_trace(make_system("nossd"), trace, time_scale=1.0)
        slow = replay_trace(make_system("nossd"), trace, time_scale=50.0)
        assert slow.latency.mean < fast.latency.mean

    def test_invalid_time_scale(self):
        trace = uniform_workload(10, 100, iops=10, seed=0)
        with pytest.raises(ConfigError):
            replay_trace(make_system("wt"), trace, time_scale=0)


class TestClosedLoop:
    def test_runs_requested_count(self):
        sys_ = make_system("wt", cache_pages=512)
        rep = run_closed_loop(
            sys_, FioConfig(total_requests=300, working_set_pages=2000,
                            read_rate=0.5, nthreads=4, seed=1)
        )
        assert rep.requests == 300
        assert rep.iops > 0

    def test_more_threads_more_queueing(self):
        cfg1 = FioConfig(total_requests=400, working_set_pages=2000,
                         nthreads=1, seed=1)
        cfg16 = FioConfig(total_requests=400, working_set_pages=2000,
                          nthreads=16, seed=1)
        lat1 = run_closed_loop(make_system("nossd"), cfg1).latency.mean
        lat16 = run_closed_loop(make_system("nossd"), cfg16).latency.mean
        assert lat16 > lat1

    def test_read_rate_bounds(self):
        with pytest.raises(ConfigError):
            FioConfig(read_rate=1.5)

    def test_kdd_beats_wt_on_write_heavy(self):
        """Figure 10's shape at read rate 0."""
        cfg = FioConfig(total_requests=800, working_set_pages=3000,
                        read_rate=0.0, nthreads=8, seed=3)
        wt = run_closed_loop(make_system("wt", cache_pages=1024), cfg)
        kdd = run_closed_loop(make_system("kdd", cache_pages=1024), cfg)
        assert kdd.latency.mean < wt.latency.mean

    def test_workload_name_encodes_read_rate(self):
        sys_ = make_system("wt")
        rep = run_closed_loop(
            sys_, FioConfig(total_requests=10, working_set_pages=100,
                            read_rate=0.75, nthreads=2)
        )
        assert rep.workload == "fio-zipf-r75"


class TestLatencyRecorder:
    def test_negative_response_time_is_simulation_error(self):
        from repro.errors import SimulationError
        from repro.stats.latency import LatencyRecorder

        rec = LatencyRecorder()
        with pytest.raises(SimulationError):
            rec.record(-1e-6)
        # a simulator fault is not a configuration mistake
        assert not issubclass(SimulationError, ConfigError)

    def test_zero_response_time_allowed(self):
        from repro.stats.latency import LatencyRecorder

        rec = LatencyRecorder()
        rec.record(0.0)
        assert len(rec) == 1
