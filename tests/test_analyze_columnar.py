"""Columnar contract analysis (RPR301-RPR305).

Each rule is proven on a fixture tree where it fires on a seeded
violation and stays silent on the conforming twin; the real tree is
then held to all of them at once (columnar-clean, with mutation tests
showing the dtype contract bites on the production ``CacheSets``
mirror and the hot-loop lint bites on ``Trace.__iter__``).
"""

import json
from pathlib import Path

from repro.devtools.analyze import Project
from repro.devtools.analyze.columnar import (
    ColumnarAnalysis,
    check_columnar,
    columnar_report,
    parse_spec,
)

SRC_REPRO = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Mini twin of repro.contracts: the analyzer resolves the decorators
#: by their project ids, so the fixture tree needs real definitions.
MINI_CONTRACTS = """\
    def columnar(dtypes=None, shapes=None):
        def mark(func):
            func.__columnar__ = {
                "dtypes": dict(dtypes or {}),
                "shapes": dict(shapes or {}),
            }
            return func
        return mark


    def mutates_membership(func):
        func.__mutates_membership__ = True
        return func
"""


def codes(findings):
    return sorted(f.code for f in findings)


class TestIndexDtypeFlow:
    """RPR301: address/index columns must stay 64-bit integers."""

    def test_narrowing_astype_of_index_array_fires(self, analyze_tree):
        project = analyze_tree({
            "core/flow.py": """\
                import numpy as np

                def compact(lbas: np.ndarray):
                    return lbas.astype(np.int32)
            """,
        })
        findings = check_columnar(project)
        assert codes(findings) == ["RPR301"]
        assert "index column cast to int32" in findings[0].message

    def test_narrow_dtype_literal_on_index_binding_fires(self, analyze_tree):
        project = analyze_tree({
            "core/flow.py": """\
                import numpy as np

                def table():
                    pages = np.zeros(16, dtype=np.int32)
                    return pages
            """,
        })
        findings = check_columnar(project)
        assert codes(findings) == ["RPR301"]
        assert "index name 'pages' bound to a int32 array" \
            in findings[0].message

    def test_true_division_promotes_index_to_float(self, analyze_tree):
        project = analyze_tree({
            "core/flow.py": """\
                import numpy as np

                def groups(lbas: np.ndarray, group_pages: int):
                    return lbas / group_pages
            """,
        })
        findings = check_columnar(project)
        assert codes(findings) == ["RPR301"]
        assert "promoted to float" in findings[0].message

    def test_floor_division_of_index_is_clean(self, analyze_tree):
        project = analyze_tree({
            "core/flow.py": """\
                import numpy as np

                def groups(lbas: np.ndarray, group_pages: int):
                    return lbas // group_pages

                def widen(lbas: np.ndarray):
                    return lbas.astype(np.uint64)
            """,
        })
        assert check_columnar(project) == []

    def test_count_names_are_not_index_tainted(self, analyze_tree):
        # npages is one token (a count), not an address: narrowing it
        # is not an RPR301 (RPR302's unit lattice governs it instead).
        project = analyze_tree({
            "core/flow.py": """\
                import numpy as np

                def sizes(reqs: np.ndarray):
                    npages = np.zeros(len(reqs), dtype=np.int32)
                    return npages
            """,
        })
        assert check_columnar(project) == []

    def test_declared_argument_contract_checked_at_call_site(
        self, analyze_tree
    ):
        project = analyze_tree({
            "contracts.py": MINI_CONTRACTS,
            "core/flow.py": """\
                import numpy as np

                from ..contracts import columnar

                @columnar(dtypes={"lbas": "int64|uint64"})
                def classify(lbas):
                    return lbas

                def caller():
                    return classify(np.linspace(0.0, 1.0, 8))
            """,
        })
        findings = check_columnar(project)
        assert codes(findings) == ["RPR301"]
        assert "argument 'lbas' of classify()" in findings[0].message
        assert "int64|uint64" in findings[0].message

    def test_conforming_call_site_is_clean(self, analyze_tree):
        project = analyze_tree({
            "contracts.py": MINI_CONTRACTS,
            "core/flow.py": """\
                import numpy as np

                from ..contracts import columnar

                @columnar(dtypes={"lbas": "int64|uint64"})
                def classify(lbas):
                    return lbas

                def caller():
                    return classify(np.arange(8, dtype=np.int64))
            """,
        })
        assert check_columnar(project) == []

    def test_declared_return_contract_checked_in_body(self, analyze_tree):
        project = analyze_tree({
            "contracts.py": MINI_CONTRACTS,
            "core/flow.py": """\
                import numpy as np

                from ..contracts import columnar

                @columnar(dtypes={"return": "bool"})
                def flags(n):
                    return np.zeros(n, dtype=np.float64)
            """,
        })
        findings = check_columnar(project)
        assert codes(findings) == ["RPR301"]
        assert "return value is declared bool" in findings[0].message


class TestUnsafeCasts:
    """RPR302: truncating and unit-carrying narrow casts."""

    def test_unrounded_float_to_int_astype_fires(self, analyze_tree):
        project = analyze_tree({
            "core/flow.py": """\
                import numpy as np

                def bins(times: np.ndarray, window: float):
                    offsets = times * (1.0 / window)
                    return offsets.astype(np.int64)
            """,
        })
        findings = check_columnar(project)
        assert codes(findings) == ["RPR302"]
        assert "truncating float->int64 cast" in findings[0].message

    def test_floor_divide_then_astype_is_clean(self, analyze_tree):
        # The windowing idiom the production code uses (streaming.py,
        # traces/analysis.py): an explicit rounding step clears the
        # truncation hazard.
        project = analyze_tree({
            "core/flow.py": """\
                import numpy as np

                def bins(times: np.ndarray, window: float):
                    return np.floor_divide(times, window).astype(np.int64)

                def rounded(times: np.ndarray):
                    return np.rint(times).astype(np.int64)
            """,
        })
        assert check_columnar(project) == []

    def test_unit_carrying_narrow_cast_fires(self, analyze_tree):
        project = analyze_tree({
            "core/flow.py": """\
                import numpy as np

                def pack(total_bytes: np.ndarray):
                    return total_bytes.astype(np.int32)
            """,
        })
        findings = check_columnar(project)
        assert codes(findings) == ["RPR302"]
        assert "unit-carrying cast" in findings[0].message
        assert "narrowed to int32" in findings[0].message

    def test_unit_preserving_wide_cast_is_clean(self, analyze_tree):
        project = analyze_tree({
            "core/flow.py": """\
                import numpy as np

                def pack(total_bytes: np.ndarray):
                    return total_bytes.astype(np.int64)
            """,
        })
        assert check_columnar(project) == []


class TestMirrorAliasing:
    """RPR303: writes through arrays derived from the CacheSets mirror."""

    def test_subscript_write_through_derived_row_fires(self, analyze_tree):
        project = analyze_tree({
            "contracts.py": MINI_CONTRACTS,
            "cache/sets.py": """\
                import numpy as np

                class CacheSets:
                    def __init__(self):
                        self._lba_table = np.full((4, 4), -1, dtype=np.int64)

                    def shortcut(self, slot, resident):
                        row = self._lba_table[0]
                        row[slot] = resident
            """,
        })
        findings = check_columnar(project)
        assert codes(findings) == ["RPR303"]
        assert "membership-mirror write" in findings[0].message
        assert "subscript assignment" in findings[0].message

    def test_augmented_write_through_view_fires(self, analyze_tree):
        project = analyze_tree({
            "contracts.py": MINI_CONTRACTS,
            "cache/sets.py": """\
                import numpy as np

                class CacheSets:
                    def __init__(self):
                        self._lba_table = np.full((4, 4), -1, dtype=np.int64)

                    def shift(self, delta):
                        flat = self._lba_table.ravel()
                        flat += delta
            """,
        })
        findings = check_columnar(project)
        assert codes(findings) == ["RPR303"]
        assert "augmented assignment" in findings[0].message

    def test_np_put_on_mirror_fires(self, analyze_tree):
        project = analyze_tree({
            "contracts.py": MINI_CONTRACTS,
            "cache/sets.py": """\
                import numpy as np

                class CacheSets:
                    def __init__(self):
                        self._lba_table = np.full((4, 4), -1, dtype=np.int64)

                    def install(self, idx, resident):
                        np.put(self._lba_table, idx, resident)
            """,
        })
        findings = check_columnar(project)
        assert codes(findings) == ["RPR303"]
        assert "np.put()" in findings[0].message

    def test_choke_point_writes_are_admitted(self, analyze_tree):
        project = analyze_tree({
            "contracts.py": MINI_CONTRACTS,
            "cache/sets.py": """\
                import numpy as np

                from ..contracts import mutates_membership

                class CacheSets:
                    def __init__(self):
                        self._lba_table = np.full((4, 4), -1, dtype=np.int64)

                    @mutates_membership
                    def _membership_update(self, slot, resident):
                        row = self._lba_table[0]
                        row[slot] = resident
            """,
        })
        assert check_columnar(project) == []

    def test_copies_of_the_mirror_are_writable(self, analyze_tree):
        # .copy() (and np.sort etc.) drop mirror taint: a snapshot is
        # not the directory.
        project = analyze_tree({
            "contracts.py": MINI_CONTRACTS,
            "cache/sets.py": """\
                import numpy as np

                class CacheSets:
                    def __init__(self):
                        self._lba_table = np.full((4, 4), -1, dtype=np.int64)

                    def snapshot(self, slot, resident):
                        snap = self._lba_table.copy()
                        snap[0, slot] = resident
                        return snap
            """,
        })
        assert check_columnar(project) == []


class TestMaskMisuse:
    """RPR304: boolean-mask misuse."""

    def test_python_and_on_mask_arrays_fires(self, analyze_tree):
        project = analyze_tree({
            "core/flow.py": """\
                import numpy as np

                def hot_writes(temps: np.ndarray, reads: np.ndarray):
                    return (temps > 0.5) and (~reads)
            """,
        })
        findings = check_columnar(project)
        assert codes(findings) == ["RPR304"]
        assert "'and' on a mask array" in findings[0].message

    def test_bitwise_mask_combination_is_clean(self, analyze_tree):
        project = analyze_tree({
            "core/flow.py": """\
                import numpy as np

                def hot_writes(temps: np.ndarray, reads: np.ndarray):
                    return (temps > 0.5) & (~reads)
            """,
        })
        assert check_columnar(project) == []

    def test_scalar_comparisons_may_use_and(self, analyze_tree):
        # Scalar subscripts drop the array flag: ordinary python
        # boolean logic on elements is not a mask misuse.
        project = analyze_tree({
            "core/flow.py": """\
                import numpy as np

                def check(temps: np.ndarray, i: int):
                    return temps[i] > 0.5 and temps[i] < 0.9
            """,
        })
        assert check_columnar(project) == []

    def test_chained_fancy_index_assignment_fires(self, analyze_tree):
        project = analyze_tree({
            "core/flow.py": """\
                import numpy as np

                def clamp(values: np.ndarray, mask: np.ndarray):
                    values[mask][0] = 0.0
            """,
        })
        findings = check_columnar(project)
        assert codes(findings) == ["RPR304"]
        assert "temporary copy" in findings[0].message

    def test_single_subscript_assignment_is_clean(self, analyze_tree):
        project = analyze_tree({
            "core/flow.py": """\
                import numpy as np

                def clamp(values: np.ndarray, mask: np.ndarray):
                    values[mask] = 0.0
            """,
        })
        assert check_columnar(project) == []


class TestHotLoops:
    """RPR305: scalar loops in designated hot modules."""

    def test_for_over_ndarray_in_hot_module_fires(self, analyze_tree):
        project = analyze_tree({
            "cache/common.py": """\
                import numpy as np

                def tally(values: np.ndarray):
                    total = 0.0
                    for v in values:
                        total = total + v
                    return total
            """,
        })
        findings = check_columnar(project)
        assert codes(findings) == ["RPR305"]
        assert "scalar loop over an ndarray in hot module" \
            in findings[0].message
        assert "repro.cache.common" in findings[0].message

    def test_tolist_first_is_clean(self, analyze_tree):
        project = analyze_tree({
            "cache/common.py": """\
                import numpy as np

                def tally(values: np.ndarray):
                    total = 0.0
                    for v in values.tolist():
                        total = total + v
                    return total
            """,
        })
        assert check_columnar(project) == []

    def test_same_loop_outside_hot_modules_is_clean(self, analyze_tree):
        project = analyze_tree({
            "core/flow.py": """\
                import numpy as np

                def tally(values: np.ndarray):
                    total = 0.0
                    for v in values:
                        total = total + v
                    return total
            """,
        })
        assert check_columnar(project) == []

    def test_allowlisted_function_is_admitted(self, analyze_tree):
        # repro.traces.trace:Trace.__iter__ is the documented scalar
        # protocol; the allowlist admits it by project id.
        project = analyze_tree({
            "traces/trace.py": """\
                import numpy as np

                class Trace:
                    def __init__(self, records):
                        self._records = records

                    def __iter__(self):
                        for rec in self._records:
                            yield rec
            """,
        })
        assert check_columnar(project) == []


class TestDeclarations:
    """@columnar declaration parsing and malformed-declaration reporting."""

    def test_uncalled_decorator_is_reported(self, analyze_tree):
        project = analyze_tree({
            "contracts.py": MINI_CONTRACTS,
            "core/flow.py": """\
                from ..contracts import columnar

                @columnar
                def classify(lbas):
                    return lbas
            """,
        })
        findings = check_columnar(project)
        assert codes(findings) == ["RPR301"]
        assert "must be called" in findings[0].message

    def test_non_literal_declaration_is_reported(self, analyze_tree):
        project = analyze_tree({
            "contracts.py": MINI_CONTRACTS,
            "core/flow.py": """\
                from ..contracts import columnar

                SPECS = {"lbas": "int64"}

                @columnar(dtypes=SPECS)
                def classify(lbas):
                    return lbas
            """,
        })
        findings = check_columnar(project)
        assert codes(findings) == ["RPR301"]
        assert "not a literal dict" in findings[0].message

    def test_unknown_spec_string_is_reported(self, analyze_tree):
        project = analyze_tree({
            "contracts.py": MINI_CONTRACTS,
            "core/flow.py": """\
                from ..contracts import columnar

                @columnar(dtypes={"lbas": "int65"})
                def classify(lbas):
                    return lbas
            """,
        })
        findings = check_columnar(project)
        assert codes(findings) == ["RPR301"]
        assert "'int65' for 'lbas' is not a recognised dtype spec" \
            in findings[0].message

    def test_shape_entry_must_name_a_parameter(self, analyze_tree):
        project = analyze_tree({
            "contracts.py": MINI_CONTRACTS,
            "core/flow.py": """\
                from ..contracts import columnar

                @columnar(shapes={"ghost": "(n,)"})
                def classify(lbas):
                    return lbas
            """,
        })
        findings = check_columnar(project)
        assert codes(findings) == ["RPR301"]
        assert "names neither a parameter nor a declared column" \
            in findings[0].message

    def test_shared_shape_symbol_checked_at_call_site(self, analyze_tree):
        project = analyze_tree({
            "contracts.py": MINI_CONTRACTS,
            "core/flow.py": """\
                import numpy as np

                from ..contracts import columnar

                @columnar(shapes={"lbas": "(n,)", "reads": "(n,)"})
                def merge(lbas, reads):
                    return lbas

                def caller(lbas, reads, lo, hi):
                    return merge(lbas[lo:hi], reads[:hi])
            """,
        })
        findings = check_columnar(project)
        assert codes(findings) == ["RPR301"]
        assert "share shape (n,)" in findings[0].message
        assert "sliced differently" in findings[0].message

    def test_identically_sliced_arguments_are_clean(self, analyze_tree):
        project = analyze_tree({
            "contracts.py": MINI_CONTRACTS,
            "core/flow.py": """\
                import numpy as np

                from ..contracts import columnar

                @columnar(shapes={"lbas": "(n,)", "reads": "(n,)"})
                def merge(lbas, reads):
                    return lbas

                def caller(lbas, reads, lo, hi):
                    return merge(lbas[lo:hi], reads[lo:hi])
            """,
        })
        assert check_columnar(project) == []

    def test_named_column_types_body_locals(self, analyze_tree):
        project = analyze_tree({
            "contracts.py": MINI_CONTRACTS,
            "core/flow.py": """\
                import numpy as np

                from ..contracts import columnar

                @columnar(dtypes={"hits": "bool"})
                def probe(n):
                    hits = np.zeros(n, dtype=np.float64)
                    return hits
            """,
        })
        findings = check_columnar(project)
        assert codes(findings) == ["RPR301"]
        assert "column 'hits' is declared bool" in findings[0].message

    def test_parse_spec_grammar(self):
        assert parse_spec("int64").options == ("int64",)
        assert parse_spec("int64|uint64").options == ("int64", "uint64")
        assert parse_spec("int").scalar == "int"
        assert parse_spec("list[int]").sequence == "int"
        tup = parse_spec("(uint64, bool)")
        assert tup.elements is not None and len(tup.elements) == 2
        assert parse_spec("int65") is None
        assert parse_spec("list[str]") is None


class TestRealTree:
    def test_src_repro_is_columnar_clean(self):
        project = Project.load([SRC_REPRO])
        assert check_columnar(project) == []

    def test_findings_and_report_are_discovery_order_invariant(self):
        forward = Project.load(sorted(SRC_REPRO.rglob("*.py")))
        backward = Project.load(sorted(SRC_REPRO.rglob("*.py"), reverse=True))
        assert [f.render() for f in check_columnar(forward)] == \
            [f.render() for f in check_columnar(backward)]
        assert columnar_report(forward) == columnar_report(backward)

    def test_narrowing_the_production_mirror_fails_the_contract(
        self, analyze_tree
    ):
        # Acceptance proof: narrow the CacheSets mirror to int32 in the
        # otherwise-identical production source and RPR301 must fire at
        # the construction site.
        sets_src = (SRC_REPRO / "cache" / "sets.py").read_text()
        contracts_src = (SRC_REPRO / "contracts.py").read_text()
        broken = sets_src.replace("dtype=np.int64", "dtype=np.int32")
        assert broken != sets_src
        project = analyze_tree({
            "contracts.py": contracts_src,
            "cache/sets.py": broken,
        })
        findings = [f for f in check_columnar(project)
                    if f.code == "RPR301"]
        assert findings, "narrowed mirror must trip RPR301"
        assert any("_lba_table" in f.message and "int32" in f.message
                   for f in findings)

    def test_emptying_the_allowlist_fires_on_trace_iter(self, monkeypatch):
        # Acceptance proof on the production tree: Trace.__iter__ is a
        # real scalar loop in a hot module, admitted only by the
        # explicit allowlist.
        import repro.devtools.analyze.columnar as columnar_mod

        monkeypatch.setattr(columnar_mod, "HOT_ALLOWLIST", frozenset())
        project = Project.load([SRC_REPRO])
        findings = check_columnar(project)
        assert any(
            f.code == "RPR305" and "Trace.__iter__" in f.message
            for f in findings
        )

    def test_declared_surface_matches_production_contracts(self):
        analysis = ColumnarAnalysis(Project.load([SRC_REPRO]))
        declared = set(analysis.decls)
        # The batch membership API carries explicit contracts...
        assert "repro.cache.sets:CacheSets.classify" in declared
        assert "repro.cache.sets:CacheSets.set_of_batch" in declared
        # ...and so do the vectorized hot paths that feed it.
        assert "repro.cache.common:SetAssocPolicy._columnar_chunk" in declared
        assert "repro.traces.trace:Trace.page_accesses" in declared

    def test_columnar_report_shape(self):
        doc = json.loads(columnar_report(Project.load([SRC_REPRO])))
        assert doc["version"] == 1
        assert sorted(doc["rules"]) == \
            ["RPR301", "RPR302", "RPR303", "RPR304", "RPR305"]
        ids = [d["function"] for d in doc["declarations"]]
        assert ids == sorted(ids)
        assert len(ids) >= 15
        assert "repro.cache.sets:CacheSets._membership_update" \
            in doc["choke_points"]
        assert "repro.traces.trace" in doc["hot_modules"]
        assert "repro.traces.trace:Trace.__iter__" in doc["hot_allowlist"]
