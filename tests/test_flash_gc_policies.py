"""Tests for FTL GC victim-selection policies and hot/cold separation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.flash import FlashGeometry, PageMappedFTL


def make_ftl(gc_policy="greedy", hot_cold=False, bpp=16, ppb=8, op=0.25):
    geo = FlashGeometry(
        channels=2,
        dies_per_channel=1,
        planes_per_die=1,
        blocks_per_plane=bpp,
        pages_per_block=ppb,
    )
    return PageMappedFTL(geo, over_provisioning=op, gc_policy=gc_policy,
                         hot_cold=hot_cold)


def skewed_workload(ftl, n=4000, seed=0):
    """80/20 skew: hot pages churn, cold pages written once in a while."""
    rng = np.random.default_rng(seed)
    hot = ftl.exported_pages // 5
    for _ in range(n):
        if rng.random() < 0.8:
            ftl.write(int(rng.integers(0, max(1, hot))))
        else:
            ftl.write(int(rng.integers(hot, ftl.exported_pages)))


@pytest.mark.parametrize("policy", ["greedy", "fifo", "cost-benefit"])
def test_policies_preserve_mapping_invariants(policy):
    ftl = make_ftl(gc_policy=policy)
    skewed_workload(ftl, 3000)
    ftl.check_invariants()
    assert ftl.gc_runs > 0
    assert ftl.write_amplification >= 1.0


def test_unknown_policy_rejected():
    with pytest.raises(ConfigError):
        make_ftl(gc_policy="random")


def test_greedy_beats_fifo_on_skew():
    """Greedy picks the emptiest block; FIFO copies hot blocks that are
    still mostly valid — classic result."""
    greedy = make_ftl(gc_policy="greedy")
    fifo = make_ftl(gc_policy="fifo")
    skewed_workload(greedy, 5000)
    skewed_workload(fifo, 5000)
    assert greedy.write_amplification <= fifo.write_amplification + 0.05


def test_fifo_levels_wear_better():
    """What FIFO buys in exchange: more even erase distribution."""
    greedy = make_ftl(gc_policy="greedy")
    fifo = make_ftl(gc_policy="fifo")
    skewed_workload(greedy, 6000)
    skewed_workload(fifo, 6000)
    if greedy.gc_runs and fifo.gc_runs:
        assert fifo.wear.wear_imbalance <= greedy.wear.wear_imbalance * 1.5


def test_hot_cold_separation_reduces_waf_on_skew():
    plain = make_ftl(hot_cold=False)
    split = make_ftl(hot_cold=True)
    skewed_workload(plain, 8000)
    skewed_workload(split, 8000)
    split.check_invariants()
    # separating relocated (cold) data from the hot stream cuts re-copying
    assert split.write_amplification <= plain.write_amplification + 0.02


def test_hot_cold_survives_small_free_pool():
    """The cold frontier falls back to the shared one when starved."""
    ftl = make_ftl(hot_cold=True, bpp=6, ppb=4, op=0.3)
    skewed_workload(ftl, 2000)
    ftl.check_invariants()


def test_cost_benefit_uses_age():
    ftl = make_ftl(gc_policy="cost-benefit")
    skewed_workload(ftl, 5000)
    ftl.check_invariants()
    assert ftl.gc_runs > 0


def test_sequential_waf_one_for_all_policies():
    for policy in ("greedy", "fifo", "cost-benefit"):
        ftl = make_ftl(gc_policy=policy)
        for _sweep in range(4):
            for lpn in range(ftl.exported_pages):
                ftl.write(lpn)
        assert ftl.write_amplification < 1.6, policy
