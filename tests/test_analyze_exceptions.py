"""Exception-flow verification (RPR107/RPR108) and the escalation proof.

Fixture trees carry a miniature ``repro/errors.py`` because the
analysis anchors its taxonomy at ``repro.errors:ReproError``; the real
tree's ``FaultPipelineHook`` escalation contract is proven at the end
against the actual source.
"""

from pathlib import Path

import pytest

from repro.devtools.analyze import Project
from repro.devtools.analyze.excflow import ExceptionFlow, check_contracts

SRC_REPRO = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Mini taxonomy mirroring repro.errors: root, ambient config error,
#: sim/raid branches, and the @raises contract decorator.
MINI_ERRORS = """\
    class ReproError(Exception):
        pass

    class ConfigError(ReproError):
        pass

    class SimulationError(ReproError):
        pass

    class RaidError(ReproError):
        pass

    class DegradedError(RaidError):
        pass

    def raises(*classes):
        def deco(func):
            func.__may_raise__ = classes
            return func
        return deco
"""


def codes(findings):
    return sorted({f.code for f in findings})


class TestUndeclaredRaise:
    def test_public_entry_without_contract_is_rpr108(self, analyze_tree):
        project = analyze_tree({
            "errors.py": MINI_ERRORS,
            "sim/api.py": """\
                from ..errors import SimulationError

                def submit(op):
                    if op is None:
                        raise SimulationError("no op")
                    return op
            """,
        })
        findings = check_contracts(project)
        assert codes(findings) == ["RPR108"]
        assert "submit()" in findings[0].message
        assert "SimulationError" in findings[0].message

    def test_contract_missing_a_reachable_raise_is_rpr107(self, analyze_tree):
        project = analyze_tree({
            "errors.py": MINI_ERRORS,
            "sim/api.py": """\
                from ..errors import RaidError, SimulationError, raises

                @raises(RaidError)
                def submit(op):
                    if op is None:
                        raise SimulationError("no op")
                    raise RaidError("bad stripe")
            """,
        })
        findings = check_contracts(project)
        assert codes(findings) == ["RPR107"]
        assert "SimulationError" in findings[0].message
        assert "RaidError" not in findings[0].message.split(":")[-1].replace(
            "SimulationError", "")

    def test_declaring_base_covers_subclasses(self, analyze_tree):
        project = analyze_tree({
            "errors.py": MINI_ERRORS,
            "sim/api.py": """\
                from ..errors import DegradedError, RaidError, raises

                @raises(RaidError)
                def rebuild(state):
                    if state == "degraded":
                        raise DegradedError("mid-rebuild")
                    return state
            """,
        })
        assert check_contracts(project) == []

    def test_over_declaration_is_allowed(self, analyze_tree):
        project = analyze_tree({
            "errors.py": MINI_ERRORS,
            "sim/api.py": """\
                from ..errors import RaidError, SimulationError, raises

                @raises(RaidError, SimulationError)
                def submit(op):
                    raise SimulationError("no op")
            """,
        })
        assert check_contracts(project) == []

    def test_undeclared_raise_through_private_helper(self, analyze_tree):
        """Interprocedural: the raise lives two private calls down."""
        project = analyze_tree({
            "errors.py": MINI_ERRORS,
            "sim/api.py": """\
                from ..errors import SimulationError

                def _deep(op):
                    raise SimulationError("no op")

                def _helper(op):
                    return _deep(op)

                def submit(op):
                    return _helper(op)
            """,
        })
        findings = check_contracts(project)
        assert codes(findings) == ["RPR108"]
        assert findings[0].message.startswith(
            "public entry point submit()")


class TestStructuredFlow:
    def test_caught_exception_leaves_may_raise(self, analyze_tree):
        project = analyze_tree({
            "errors.py": MINI_ERRORS,
            "sim/api.py": """\
                from ..errors import SimulationError

                def submit(op):
                    try:
                        raise SimulationError("no op")
                    except SimulationError:
                        return None
            """,
        })
        assert check_contracts(project) == []

    def test_bare_raise_rethrows_the_caught_class(self, analyze_tree):
        project = analyze_tree({
            "errors.py": MINI_ERRORS,
            "sim/api.py": """\
                from ..errors import SimulationError

                def submit(op):
                    try:
                        raise SimulationError("no op")
                    except SimulationError:
                        raise
            """,
        })
        findings = check_contracts(project)
        assert codes(findings) == ["RPR108"]
        assert "SimulationError" in findings[0].message

    def test_catching_base_subtracts_subclasses(self, analyze_tree):
        project = analyze_tree({
            "errors.py": MINI_ERRORS,
            "sim/api.py": """\
                from ..errors import DegradedError, RaidError

                def rebuild(state):
                    try:
                        raise DegradedError("mid-rebuild")
                    except RaidError:
                        return None
            """,
        })
        assert check_contracts(project) == []

    def test_escalation_pattern_translates_the_class(self, analyze_tree):
        """except FaultClass -> raise Escalated: only the escalated
        class remains in the may-raise set (the escalation chain)."""
        project = analyze_tree({
            "errors.py": MINI_ERRORS,
            "sim/api.py": """\
                from ..errors import DegradedError, RaidError, raises
                from ..errors import SimulationError

                @raises(DegradedError)
                def pump(op):
                    try:
                        raise SimulationError("media fault")
                    except SimulationError as exc:
                        raise DegradedError("escalated") from exc
            """,
        })
        assert check_contracts(project) == []


class TestExemptions:
    def test_config_error_is_ambient(self, analyze_tree):
        project = analyze_tree({
            "errors.py": MINI_ERRORS,
            "sim/api.py": """\
                from ..errors import ConfigError

                def submit(op):
                    if op is None:
                        raise ConfigError("bad op")
                    return op
            """,
        })
        assert check_contracts(project) == []

    def test_private_functions_are_not_entry_points(self, analyze_tree):
        project = analyze_tree({
            "errors.py": MINI_ERRORS,
            "sim/api.py": """\
                from ..errors import SimulationError

                def _submit(op):
                    raise SimulationError("no op")
            """,
        })
        assert check_contracts(project) == []

    def test_non_entry_packages_are_not_checked(self, analyze_tree):
        project = analyze_tree({
            "errors.py": MINI_ERRORS,
            "harness/run.py": """\
                from ..errors import SimulationError

                def run(op):
                    raise SimulationError("no op")
            """,
        })
        assert check_contracts(project) == []

    def test_dunder_without_contract_is_exempt(self, analyze_tree):
        project = analyze_tree({
            "errors.py": MINI_ERRORS,
            "sim/api.py": """\
                from ..errors import SimulationError

                class System:
                    def __init__(self, op):
                        if op is None:
                            raise SimulationError("no op")
                        self.op = op
            """,
        })
        assert check_contracts(project) == []

    def test_dunder_with_contract_is_still_held_to_it(self, analyze_tree):
        project = analyze_tree({
            "errors.py": MINI_ERRORS,
            "sim/api.py": """\
                from ..errors import RaidError, SimulationError, raises

                class System:
                    @raises(RaidError)
                    def __init__(self, op):
                        raise SimulationError("no op")
            """,
        })
        assert codes(check_contracts(project)) == ["RPR107"]


@pytest.fixture(scope="module")
def real_flow():
    return ExceptionFlow(Project.load([SRC_REPRO]))


class TestRealTreeEscalationProof:
    """DESIGN.md §10: the fault pipeline's escalation chain, proven on
    the actual source rather than asserted in prose."""

    def test_fault_classes_never_escape_escalation(self, real_flow):
        fault_closure = real_flow.project.subclasses_of(
            "repro.errors:FaultError")
        escalate = real_flow.may_raise[
            "repro.engine.hooks:FaultPipelineHook._escalate"]
        degraded_closure = real_flow.project.subclasses_of(
            "repro.errors:DegradedError")
        # Whatever escalation re-raises is in the Degraded family, and
        # no raw FaultError class survives the pipeline hook.
        assert escalate <= degraded_closure
        assert not (escalate & fault_closure)

    def test_no_public_entry_point_leaks_fault_classes(self, real_flow):
        fault_closure = real_flow.project.subclasses_of(
            "repro.errors:FaultError")
        leaks = {
            fid for fid, raised in real_flow.may_raise.items()
            if real_flow.project.modules[
                real_flow.project.functions[fid].module
            ].top_package in ("sim", "engine", "faults")
            and real_flow.project.functions[fid].is_public
            and raised & fault_closure
        }
        assert leaks == set()

    def test_declared_contracts_on_real_entry_points(self, real_flow):
        declared = {
            fid: {cls.rsplit(":", 1)[1] for cls in classes}
            for fid, classes in real_flow.declared.items()
        }
        assert declared["repro.engine.core:EventLoop.run"] == \
            {"SimulationError"}
        assert declared["repro.engine.system:SimEngine.submit"] == \
            {"SimulationError"}
        assert declared["repro.sim.system:TimedSystem.submit"] == \
            {"SimulationError"}
        assert declared["repro.faults.timed:rebuild_under_load"] == \
            {"DegradedError"}
        assert declared["repro.faults.demo:demo_event_log"] == {"RaidError"}

    def test_real_tree_is_contract_clean(self, real_flow):
        assert ExceptionFlow(real_flow.project).check() == []
