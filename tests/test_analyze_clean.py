"""Tier-1 gate: ``src/repro`` is whole-program-analysis clean.

The analyzer's findings over the real tree must be empty (with no
baseline), including the opt-in dead-code report, and two runs must
render byte-identical output — the same discipline kdd-lint is held to
by ``test_lint_clean``.
"""

import json
from pathlib import Path

import pytest

from repro.devtools.analyze import Project
from repro.devtools.analyze.cli import analyze_project
from repro.devtools.analyze.graphio import architecture_md, graph_dot, graph_json

SRC_REPRO = Path(__file__).resolve().parent.parent / "src" / "repro"


@pytest.fixture(scope="module")
def project():
    return Project.load([SRC_REPRO])


def test_src_repro_is_analyze_clean(project):
    findings = analyze_project(project)
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"kdd-repro analyze findings:\n{rendered}"


def test_src_repro_has_no_dead_public_symbols(project):
    findings = analyze_project(project, dead_code=True)
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"dead-code findings:\n{rendered}"


def test_output_is_byte_identical_across_runs(project):
    def render(proj):
        findings = analyze_project(proj, dead_code=True)
        return (
            json.dumps([f.to_json() for f in findings], sort_keys=True)
            + graph_json(proj) + graph_dot(proj) + architecture_md(proj)
        )

    assert render(project) == render(Project.load([SRC_REPRO]))


def test_architecture_doc_is_current(project):
    """docs/architecture.md is generated; regenerate it when the import
    graph changes: kdd-repro analyze --write-docs docs/architecture.md"""
    doc = SRC_REPRO.parent.parent / "docs" / "architecture.md"
    assert doc.read_text(encoding="utf-8") == architecture_md(project)
