"""Streaming statistics: P² quantiles, windowed throughput, recorder.

The P² estimator backs the serving layer's O(1) metrics, so its
accuracy contract is property-tested against ``np.percentile`` on
adversarial distributions (heavy tails, duplicates, sorted and
reverse-sorted feeds), and the streaming :class:`LatencyRecorder` must
agree exactly with the buffering one on count/mean/max while keeping a
constant byte footprint.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.stats import (
    LatencyRecorder,
    P2Quantile,
    StreamingQuantiles,
    WindowedThroughput,
)


def _p2_estimate(values, p):
    est = P2Quantile(p)
    for v in values:
        est.add(float(v))
    return est.value()


# Adversarial sample factories, keyed by a hypothesis-drawn shape.
def _samples(shape, seed, n):
    rng = np.random.default_rng(seed)
    if shape == "uniform":
        return rng.random(n)
    if shape == "lognormal":  # heavy tail
        return rng.lognormal(0.0, 2.0, n)
    if shape == "bimodal":
        return np.where(rng.random(n) < 0.5, rng.normal(0.0, 0.1, n),
                        rng.normal(100.0, 5.0, n))
    # duplicates: few distinct values, shuffled arrival order
    return rng.permutation(np.repeat(rng.random(max(1, n // 16)), 16)[:n])


class TestP2Quantile:
    def test_exact_below_five_samples(self):
        for values in ([0.3], [0.9, 0.1], [5.0, 1.0, 3.0],
                       [2.0, 4.0, 1.0, 3.0]):
            est = P2Quantile(0.5)
            for v in values:
                est.add(v)
            assert est.value() == pytest.approx(
                float(np.percentile(values, 50.0)))

    def test_invalid_p_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError, match="p"):
            P2Quantile(0.0)
        with pytest.raises(ConfigError, match="p"):
            P2Quantile(1.0)

    @settings(max_examples=40, deadline=None)
    @given(
        shape=st.sampled_from(["uniform", "lognormal", "bimodal",
                               "duplicates"]),
        seed=st.integers(0, 2**16 - 1),
        n=st.integers(200, 2000),
        p=st.sampled_from([0.5, 0.9, 0.95, 0.99]),
    )
    def test_tracks_numpy_percentile(self, shape, seed, n, p):
        """P² stays within a small quantile-rank band of the exact
        answer: in empirical-CDF terms the estimate's rank must sit
        near ``p`` (rank space handles atoms, where value-space bands
        degenerate on step distributions)."""
        values = _samples(shape, seed, n)
        got = _p2_estimate(values, p)
        # One atom of probability mass is the resolution limit when the
        # distribution has heavy duplicates.
        atom = np.max(np.unique(values, return_counts=True)[1]) / n
        band = 0.07 + atom
        below = np.count_nonzero(values < got) / n
        at_or_below = np.count_nonzero(values <= got) / n
        assert below <= p + band + 1e-9
        assert at_or_below >= p - band - 1e-9
        # And the estimate never leaves the observed value range.
        assert values.min() <= got <= values.max()

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**16 - 1), n=st.integers(200, 1000),
           reverse=st.booleans())
    def test_monotone_feed_order_median(self, seed, n, reverse):
        """Monotone arrival order is P²'s documented worst case; the
        median must still land within a loose rank band (high quantiles
        under reverse-sorted feeds are out of contract)."""
        values = np.sort(np.random.default_rng(seed).random(n))
        if reverse:
            values = values[::-1]
        got = _p2_estimate(values, 0.5)
        lo = float(np.percentile(values, 38.0))
        hi = float(np.percentile(values, 62.0))
        assert lo <= got <= hi

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**16 - 1), n=st.integers(5, 500))
    def test_state_is_constant_size(self, seed, n):
        est = P2Quantile(0.95)
        before = est.state_bytes()
        for v in np.random.default_rng(seed).random(n):
            est.add(float(v))
        assert est.state_bytes() == before

    def test_empty_estimator_reports_zero(self):
        assert P2Quantile(0.5).value() == pytest.approx(0.0)


class TestStreamingQuantiles:
    def test_summary_labels(self):
        sq = StreamingQuantiles((0.5, 0.95, 0.99))
        sq.add_many(np.arange(100, dtype=float))
        summary = sq.summary()
        assert set(summary) == {"p50", "p95", "p99"}
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_add_many_matches_scalar_adds(self):
        values = np.random.default_rng(7).lognormal(0.0, 1.0, 400)
        a = StreamingQuantiles((0.5, 0.99))
        b = StreamingQuantiles((0.5, 0.99))
        a.add_many(values)
        for v in values:
            b.add(float(v))
        assert a.summary() == b.summary()


class TestWindowedThroughput:
    def test_mean_and_peak(self):
        thr = WindowedThroughput(window_s=1.0)
        # 3 requests in [0,1), 1 in [1,2), 2 in [2,3)
        thr.observe_batch(np.array([0.1, 0.2, 0.9, 1.5, 2.1, 2.2]))
        s = thr.summary()
        assert s["windows"] == 3
        assert s["peak_per_s"] == pytest.approx(3.0)
        assert s["mean_per_s"] == pytest.approx(2.0)

    def test_backwards_time_rejected(self):
        thr = WindowedThroughput(window_s=1.0)
        thr.observe_batch(np.array([5.0]))
        with pytest.raises(SimulationError):
            thr.observe_batch(np.array([1.0]))

    def test_state_constant_across_many_windows(self):
        thr = WindowedThroughput(window_s=1.0)
        before = thr.state_bytes()
        thr.observe_batch(np.linspace(0.0, 5000.0, 20_000))
        assert thr.state_bytes() == before


class TestLatencyRecorderStreaming:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16 - 1), n=st.integers(1, 400))
    def test_exact_and_streaming_agree_on_moments(self, seed, n):
        values = np.random.default_rng(seed).lognormal(0.0, 1.5, n)
        exact = LatencyRecorder()
        stream = LatencyRecorder(streaming=True)
        for v in values:
            exact.record(float(v))
            stream.record(float(v))
        a, b = exact.summary(), stream.summary()
        assert a.count == b.count
        assert a.mean == pytest.approx(b.mean)
        assert a.maximum == pytest.approx(b.maximum)

    def test_streaming_footprint_is_constant(self):
        rec = LatencyRecorder(streaming=True)
        before = rec.state_bytes()
        for v in np.random.default_rng(0).random(10_000):
            rec.record(float(v))
        assert rec.state_bytes() == before

    def test_buffered_summary_unchanged(self):
        """The exact path is the golden-file contract: unchanged."""
        rec = LatencyRecorder()
        for v in (1.0, 2.0, 3.0, 4.0):
            rec.record(v)
        s = rec.summary()
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert not rec.streaming

    def test_streaming_quantiles_close_to_exact(self):
        values = np.random.default_rng(3).lognormal(0.0, 1.0, 3000)
        exact = LatencyRecorder()
        stream = LatencyRecorder(streaming=True)
        for v in values:
            exact.record(float(v))
            stream.record(float(v))
        a, b = exact.summary(), stream.summary()
        for name in ("p50", "p95", "p99"):
            lo = float(np.percentile(values, 100.0 * max(
                0.0, {"p50": 0.44, "p95": 0.89, "p99": 0.93}[name])))
            hi = float(np.percentile(values, 100.0 * min(
                1.0, {"p50": 0.56, "p95": 1.0, "p99": 1.0}[name])))
            got = getattr(b, name)
            assert lo <= got <= hi, (name, got, getattr(a, name))
        assert b.maximum == pytest.approx(a.maximum)
