"""Tests for the striping layouts."""

import pytest

from repro.errors import ConfigError
from repro.raid import RaidLayout, RaidLevel


def test_minimum_disk_counts():
    with pytest.raises(ConfigError):
        RaidLayout(RaidLevel.RAID5, 2)
    with pytest.raises(ConfigError):
        RaidLayout(RaidLevel.RAID6, 3)
    RaidLayout(RaidLevel.RAID5, 3)  # ok


def test_raid5_parity_rotates_left_symmetric():
    lay = RaidLayout(RaidLevel.RAID5, 5, chunk_pages=1)
    assert [lay.parity_disk(s) for s in range(5)] == [4, 3, 2, 1, 0]
    assert lay.parity_disk(5) == 4  # wraps


def test_raid5_data_follows_parity():
    lay = RaidLayout(RaidLevel.RAID5, 5, chunk_pages=1)
    # stripe 0: parity on disk 4, data chunks on 0,1,2,3
    assert [lay.data_disk(0, c) for c in range(4)] == [0, 1, 2, 3]
    # stripe 1: parity on disk 3, data on 4,0,1,2
    assert [lay.data_disk(1, c) for c in range(4)] == [4, 0, 1, 2]


def test_raid5_locate_round_trip():
    lay = RaidLayout(RaidLevel.RAID5, 5, chunk_pages=16)
    seen = set()
    for lpage in range(5 * lay.stripe_data_pages):
        loc = lay.locate(lpage)
        assert loc.disk != lay.parity_disk(loc.stripe)
        key = (loc.disk, loc.disk_page)
        assert key not in seen  # no two logical pages share a physical slot
        seen.add(key)


def test_raid6_p_and_q_distinct_and_rotate():
    lay = RaidLayout(RaidLevel.RAID6, 6, chunk_pages=4)
    for s in range(12):
        p, q = lay.parity_disk(s), lay.q_disk(s)
        assert p != q
        assert q == (p + 1) % 6
        for c in range(lay.data_disks_per_stripe):
            assert lay.data_disk(s, c) not in (p, q)


def test_stripe_data_pages_and_capacity():
    lay = RaidLayout(RaidLevel.RAID5, 5, chunk_pages=16, pages_per_disk=160)
    assert lay.stripe_data_pages == 64
    assert lay.capacity_pages == 640
    assert lay.fault_tolerance == 1


def test_raid0_no_parity():
    lay = RaidLayout(RaidLevel.RAID0, 4, chunk_pages=2)
    assert lay.parity_disk(0) is None
    assert lay.fault_tolerance == 0
    assert lay.stripe_data_pages == 8


def test_raid1_capacity_is_one_member():
    lay = RaidLayout(RaidLevel.RAID1, 3, chunk_pages=4, pages_per_disk=100)
    assert lay.capacity_pages == 100
    assert lay.fault_tolerance == 2


def test_parity_page_tracks_offset():
    lay = RaidLayout(RaidLevel.RAID5, 5, chunk_pages=16)
    lpage = 5  # stripe 0, chunk 0, offset 5
    assert lay.parity_page(0, lpage) == 5
    lpage2 = 64 + 17  # stripe 1, chunk 1, offset 1
    assert lay.parity_page(1, lpage2) == 17


def test_stripe_pages_enumeration():
    lay = RaidLayout(RaidLevel.RAID5, 5, chunk_pages=2)
    assert list(lay.stripe_pages(0)) == list(range(8))
    assert list(lay.stripe_pages(1)) == list(range(8, 16))


def test_capacity_bound_enforced():
    lay = RaidLayout(RaidLevel.RAID5, 5, chunk_pages=2, pages_per_disk=4)
    with pytest.raises(ConfigError):
        lay.locate(lay.capacity_pages + lay.stripe_data_pages)
