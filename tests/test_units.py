"""Tests for size/time unit helpers."""

import pytest

from repro.errors import ConfigError
from repro.units import (
    DEFAULT_PAGE_SIZE,
    GiB,
    KiB,
    MiB,
    format_bytes,
    pages_for_bytes,
)


def test_constants_are_powers_of_1024():
    assert KiB == 1024
    assert MiB == 1024 * KiB
    assert GiB == 1024 * MiB
    assert DEFAULT_PAGE_SIZE == 4 * KiB


def test_pages_for_bytes_exact():
    assert pages_for_bytes(0) == 0
    assert pages_for_bytes(4096) == 1
    assert pages_for_bytes(8192) == 2


def test_pages_for_bytes_rounds_up():
    assert pages_for_bytes(1) == 1
    assert pages_for_bytes(4097) == 2


def test_pages_for_bytes_custom_page_size():
    assert pages_for_bytes(1024, page_size=512) == 2


def test_pages_for_bytes_rejects_negative():
    with pytest.raises(ConfigError):
        pages_for_bytes(-1)


def test_format_bytes_scales_units():
    assert format_bytes(512) == "512 B"
    assert format_bytes(1536) == "1.5 KiB"
    assert format_bytes(3 * MiB) == "3.0 MiB"
    assert format_bytes(2 * GiB) == "2.0 GiB"
