"""Tests for the consistent write-back variants (ordered / journaled)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig, JournaledWriteBack, OrderedWriteBack
from repro.errors import ConfigError
from repro.nvram import PageState
from repro.raid import RAIDArray, RaidLevel


def make_raid():
    return RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=4,
                     pages_per_disk=1 << 14)


def cfg(cache_pages=256, **kw):
    kw.setdefault("ways", 16)
    return CacheConfig(cache_pages=cache_pages, **kw)


class TestOrderedWriteBack:
    def test_staleness_bounded(self):
        p = OrderedWriteBack(cfg(), make_raid(), max_dirty_writes=8)
        for lba in range(30):
            p.write(lba)
        assert p.staleness <= 8
        assert p.ordered_flushes >= 22
        p.check_invariants()

    def test_flushes_in_write_order(self):
        raid = make_raid()
        p = OrderedWriteBack(cfg(), raid, max_dirty_writes=2)
        for lba in (10, 20, 30):
            p.write(lba)
        # lba 10 (oldest) must have been flushed first
        line10 = p.sets.lookup(10)
        assert line10.state is PageState.CLEAN
        assert p.sets.lookup(30).state is PageState.DIRTY

    def test_rewrite_moves_to_tail(self):
        p = OrderedWriteBack(cfg(), make_raid(), max_dirty_writes=2)
        p.write(1)
        p.write(2)
        p.write(1)  # 1 becomes youngest
        p.write(3)  # bound exceeded: 2 (now oldest) flushes, not 1
        assert p.sets.lookup(2).state is PageState.CLEAN
        assert p.sets.lookup(1).state is PageState.DIRTY

    def test_finish_drains_everything(self):
        raid = make_raid()
        p = OrderedWriteBack(cfg(), raid, max_dirty_writes=100)
        for lba in range(10):
            p.write(lba)
        p.finish()
        assert p.staleness == 0
        assert p.dirty_pages == 0
        assert raid.counters.data_writes >= 10

    def test_validation(self):
        with pytest.raises(ConfigError):
            OrderedWriteBack(cfg(), make_raid(), max_dirty_writes=0)

    @settings(max_examples=20, deadline=None)
    @given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 40)),
                        max_size=150))
    def test_property_bound_never_violated(self, ops):
        p = OrderedWriteBack(cfg(cache_pages=32, ways=8), make_raid(),
                             max_dirty_writes=5)
        for is_read, lba in ops:
            p.access(lba, is_read)
            assert p.staleness <= 5
        p.check_invariants()


class TestJournaledWriteBack:
    def test_epoch_commits_in_batches(self):
        p = JournaledWriteBack(cfg(), make_raid(), epoch_writes=4)
        for lba in range(4):
            p.write(lba)
        assert p.epochs_committed == 1
        assert p.dirty_pages == 0

    def test_epoch_coalesces_rewrites(self):
        raid = make_raid()
        p = JournaledWriteBack(cfg(), raid, epoch_writes=4)
        for _ in range(4):
            p.write(7)  # same page four times
        assert p.epochs_committed == 1
        assert raid.counters.data_writes == 1  # one flush for four writes

    def test_finish_commits_partial_epoch(self):
        raid = make_raid()
        p = JournaledWriteBack(cfg(), raid, epoch_writes=100)
        p.write(1)
        p.finish()
        assert p.dirty_pages == 0
        assert raid.counters.data_writes >= 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            JournaledWriteBack(cfg(), make_raid(), epoch_writes=0)


class TestStalenessSpectrum:
    def test_tighter_bound_more_raid_traffic(self):
        """The FAST'13 trade-off: smaller RPO costs more flush I/O."""
        from repro.traces import zipf_workload

        trace = zipf_workload(5000, 600, alpha=1.0, read_ratio=0.2, seed=4)

        def raid_writes(bound):
            raid = make_raid()
            p = OrderedWriteBack(cfg(), raid, max_dirty_writes=bound)
            p.process_trace(trace)
            return raid.counters.data_writes

        assert raid_writes(4) > raid_writes(400)

    def test_kdd_matches_rpo_zero_with_less_raid_cost_than_wt(self):
        """KDD's position on the spectrum: RPO=0 like WT, write-back-like
        member traffic on hits."""
        from repro.harness import simulate_policy
        from repro.traces import zipf_workload

        trace = zipf_workload(5000, 600, alpha=1.0, read_ratio=0.2, seed=4)
        wt = simulate_policy("wt", trace, 256, seed=1)
        kdd = simulate_policy("kdd", trace, 256, seed=1)
        assert kdd.raid.total < wt.raid.total
