"""Byte-accurate tests for the prototype data path (real deltas, real parity)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ContentWorkload, KDDDataPath
from repro.errors import ConfigError
from repro.raid import RAIDArray, RaidLevel


def make_path(cache_pages=64, page_size=256, dirty_limit=0.5):
    raid = RAIDArray(
        RaidLevel.RAID5,
        ndisks=5,
        chunk_pages=4,
        pages_per_disk=4096,
        page_size=page_size,
        store_data=True,
    )
    return KDDDataPath(
        raid=raid,
        cache_pages=cache_pages,
        ways=16,
        page_size=page_size,
        dirty_limit=dirty_limit,
    )


class TestContentWorkload:
    def test_initial_then_versions(self):
        w = ContentWorkload(universe_pages=10, change_fraction=0.1,
                            page_size=256, seed=1)
        v0 = w.next_version(3)
        v1 = w.next_version(3)
        assert v0 != v1
        assert w.current(3) == v1
        # small change: most bytes unchanged
        diff = sum(a != b for a, b in zip(v0, v1))
        assert diff <= 0.2 * 256

    def test_unwritten_page_is_zero(self):
        w = ContentWorkload(universe_pages=4, page_size=64)
        assert w.current(0) == b"\0" * 64

    def test_validation(self):
        with pytest.raises(ConfigError):
            ContentWorkload(0)
        with pytest.raises(ConfigError):
            ContentWorkload(4, change_fraction=2.0)


class TestDataPath:
    def test_write_then_read_roundtrip(self):
        p = make_path()
        p.write(5, b"hello world")
        assert p.read(5)[:11] == b"hello world"

    def test_write_hit_roundtrip_via_delta(self):
        """The core claim: old data + delta reconstructs the new version."""
        p = make_path()
        w = ContentWorkload(10, change_fraction=0.1, page_size=256, seed=2)
        v0 = w.next_version(5)
        p.write(5, v0)
        v1 = w.next_version(5)
        p.write(5, v1)  # write hit: stored as old + delta
        assert p.write_hits == 1
        assert p.read(5) == v1

    def test_chain_of_versions_always_latest(self):
        p = make_path()
        w = ContentWorkload(4, change_fraction=0.15, page_size=256, seed=3)
        for _ in range(8):
            data = w.next_version(2)
            p.write(2, data)
        assert p.read(2) == w.current(2)

    def test_read_miss_fetches_from_raid(self):
        p = make_path()
        p.write(9, b"abc")
        p.flush()
        # evict by filling... simpler: new path over same raid
        p2 = KDDDataPath(raid=p.raid, cache_pages=64, ways=16, page_size=256)
        assert p2.read(9)[:3] == b"abc"
        assert p2.read_misses == 1

    def test_parity_consistent_after_flush(self):
        p = make_path()
        w = ContentWorkload(30, change_fraction=0.1, page_size=256, seed=4)
        for lba in range(30):
            p.write(lba, w.next_version(lba))
        for lba in range(30):
            p.write(lba, w.next_version(lba))
        p.flush()
        assert not p.raid.stale_stripes
        for stripe in {p.raid.layout.stripe_of(lba) for lba in range(30)}:
            assert p.raid.verify_stripe(stripe)

    def test_survives_disk_failure_after_flush(self):
        """RPO=0 end-to-end: data reconstructable from parity."""
        p = make_path()
        w = ContentWorkload(12, change_fraction=0.1, page_size=256, seed=5)
        latest = {}
        for lba in range(12):
            p.write(lba, w.next_version(lba))
            latest[lba] = w.current(lba)
            p.write(lba, w.next_version(lba))
            latest[lba] = w.current(lba)
        p.flush()
        p.raid.fail_disk(1)
        for lba, data in latest.items():
            assert bytes(p.raid.read_data(lba)) == data

    def test_content_locality_shrinks_deltas(self):
        ratios = []
        for frac in (0.05, 0.50):
            p = make_path(page_size=1024)
            w = ContentWorkload(8, change_fraction=frac, page_size=1024,
                                seed=6)
            for _ in range(10):
                for lba in range(8):
                    p.write(lba, w.next_version(lba))
            ratios.append(p.mean_delta_ratio)
        assert ratios[0] < ratios[1]  # 5% change compresses far better

    def test_page_size_mismatch_rejected(self):
        raid = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=4,
                         pages_per_disk=1024, page_size=128, store_data=True)
        with pytest.raises(ConfigError):
            KDDDataPath(raid=raid, cache_pages=16, page_size=256)

    def test_counting_raid_rejected(self):
        raid = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=4,
                         pages_per_disk=1024, page_size=256)
        with pytest.raises(ConfigError):
            KDDDataPath(raid=raid, cache_pages=16, page_size=256)


@settings(max_examples=12, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, 40)), min_size=1, max_size=120
    ),
    change=st.sampled_from([0.05, 0.2, 0.6]),
)
def test_property_datapath_always_bit_exact(ops, change):
    """Random read/write streams with real content: every read returns
    exactly the reference content; after flush, parity verifies."""
    p = make_path(cache_pages=32, page_size=256, dirty_limit=0.4)
    w = ContentWorkload(41, change_fraction=change, page_size=256, seed=7)
    touched = set()
    for is_read, lba in ops:
        if is_read:
            got = p.read(lba)
            assert got == w.current(lba), lba
        else:
            data = w.next_version(lba)
            p.write(lba, data)
            touched.add(lba)
    for lba in touched:
        assert p.read(lba) == w.current(lba), lba
    p.flush()
    assert not p.raid.stale_stripes
    for stripe in {p.raid.layout.stripe_of(lba) for lba in touched}:
        assert p.raid.verify_stripe(stripe)
