"""Behavioural and property tests for KDD."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig
from repro.core import KDD
from repro.nvram import PageState
from repro.raid import RAIDArray, RaidLevel


def make_raid(**kw):
    kw.setdefault("level", RaidLevel.RAID5)
    kw.setdefault("ndisks", 5)
    kw.setdefault("chunk_pages", 4)
    kw.setdefault("pages_per_disk", 4096)
    return RAIDArray(**kw)


def cfg(cache_pages=64, **kw):
    kw.setdefault("ways", 16)
    kw.setdefault("group_pages", 16)
    kw.setdefault("mean_compression", 0.25)
    return CacheConfig(cache_pages=cache_pages, **kw)


def make_kdd(cache_pages=64, raid=None, **kw):
    policy_kw = {
        k: kw.pop(k)
        for k in ("reclaim_merge", "fixed_dez_fraction", "dez_random_placement")
        if k in kw
    }
    raid = raid or make_raid()
    return KDD(cfg(cache_pages, **kw), raid, **policy_kw), raid


class TestWritePath:
    def test_write_hit_is_single_member_write(self):
        """The headline: no parity I/O on the critical path of a write hit."""
        kdd, raid = make_kdd()
        kdd.read(5)
        out = kdd.write(5)
        assert out.hit
        assert len(out.fg_disk_ops) == 1 and not out.fg_disk_ops[0].is_read
        assert raid.stale_stripes

    def test_write_miss_pays_full_parity(self):
        kdd, _ = make_kdd()
        out = kdd.write(5)
        assert not out.hit
        assert len(out.fg_disk_ops) == 4  # classic rmw

    def test_write_hit_flips_clean_to_old_and_stages_delta(self):
        kdd, _ = make_kdd()
        kdd.read(5)
        kdd.write(5)
        line = kdd.sets.lookup(5)
        assert line.state is PageState.OLD
        assert line.aux.dez_lpn is None  # still in NVRAM
        assert 5 in kdd.staging

    def test_write_hit_does_not_write_data_to_ssd(self):
        """KDD's endurance win: a write hit costs zero SSD data writes."""
        kdd, _ = make_kdd()
        kdd.read(5)
        before = kdd.stats.ssd_writes
        kdd.write(5)
        assert kdd.stats.ssd_writes == before  # delta still in NVRAM

    def test_repeated_write_hits_coalesce_in_staging(self):
        kdd, _ = make_kdd()
        kdd.read(5)
        for _ in range(10):
            kdd.write(5)
        assert len(kdd.staging) == 1
        assert kdd.stats.delta_writes == 0  # all coalesced, nothing committed

    def test_old_hit_invalidates_dez_delta(self):
        kdd, _ = make_kdd(cache_pages=256, ways=64, nvram_buffer_bytes=4096,
                          compression_sigma=0.0, mean_compression=0.5)
        # two pages alternating: deltas of 2048B fill the staging buffer fast
        kdd.read(1)
        kdd.read(2)
        for _ in range(6):
            kdd.write(1)
            kdd.write(2)
        # at least one commit happened; writing again invalidates DEZ deltas
        assert kdd.stats.delta_writes >= 1
        kdd.check_invariants()


class TestDeltaZone:
    def test_staging_overflow_commits_one_dez_page(self):
        kdd, _ = make_kdd(cache_pages=256, ways=64, compression_sigma=0.0,
                          mean_compression=0.5)
        for lba in range(3):
            kdd.read(lba)
        for lba in range(3):
            kdd.write(lba)
        # each 2048+8B delta overflows the 4096B buffer holding another one:
        # deltas 0 and 1 each got committed alone; delta 2 is still staged
        assert kdd.stats.delta_writes == 2
        assert len(kdd.dez_pages) == 2
        for dez in kdd.dez_pages.values():
            assert dez.valid_count == 1
        assert 2 in kdd.staging
        kdd.check_invariants()

    def test_read_hit_on_old_reads_data_plus_delta(self):
        kdd, _ = make_kdd(cache_pages=256, ways=64, compression_sigma=0.0,
                          mean_compression=0.5)
        for lba in range(3):
            kdd.read(lba)
        for lba in range(3):
            kdd.write(lba)
        # lba 0's delta is now in a DEZ page
        out = kdd.read(0)
        assert out.hit and out.fg_ssd_reads == 2
        assert out.fg_compute > 0
        # lba 2's delta is still staged: one SSD read only
        out2 = kdd.read(2)
        assert out2.hit and out2.fg_ssd_reads == 1

    def test_dez_page_freed_when_all_deltas_invalid(self):
        kdd, _ = make_kdd(cache_pages=256, ways=64, compression_sigma=0.0,
                          mean_compression=0.5, dirty_threshold=0.99,
                          low_watermark=0.5)
        for lba in range(2):
            kdd.read(lba)
        for _ in range(2):
            for lba in range(2):
                kdd.write(lba)
        # the first commit's deltas are all superseded by the second round
        for dez in kdd.dez_pages.values():
            assert dez.valid_count > 0  # empty pages are reclaimed eagerly
        kdd.check_invariants()


class TestCleaning:
    def test_cleaning_triggers_on_threshold(self):
        kdd, raid = make_kdd(cache_pages=32, ways=32, dirty_threshold=0.25,
                             low_watermark=0.1)
        for lba in range(10):
            kdd.read(lba)
        for lba in range(10):
            kdd.write(lba)
        assert kdd.cleanings > 0
        assert kdd.dirty_pages <= 0.25 * 32 + 1
        kdd.check_invariants()

    def test_cleaning_reclaims_old_pages(self):
        kdd, raid = make_kdd(dirty_threshold=0.99, low_watermark=0.5)
        kdd.read(5)
        kdd.write(5)
        kdd.finish()
        assert not raid.stale_stripes
        assert kdd.sets.lookup(5) is None  # simple reclaim drops the page
        assert len(kdd.staging) == 0
        kdd.check_invariants()

    def test_reclaim_merge_keeps_page_clean(self):
        kdd, raid = make_kdd(reclaim_merge=True)
        kdd.read(5)
        kdd.write(5)
        kdd.finish()
        line = kdd.sets.lookup(5)
        assert line is not None and line.state is PageState.CLEAN
        assert not raid.stale_stripes

    def test_rcw_used_when_whole_stripe_cached(self):
        raid = make_raid(chunk_pages=1)  # stripe = 4 data pages
        kdd, _ = make_kdd(cache_pages=64, raid=raid, group_pages=4,
                          dirty_threshold=0.99, low_watermark=0.5)
        for lba in range(4):
            kdd.read(lba)
        kdd.write(0)
        raid.counters.parity_reads = 0
        kdd.finish()
        # reconstruct-write repairs parity without reading it
        assert raid.counters.parity_reads == 0
        assert not raid.stale_stripes

    def test_rmw_used_when_stripe_partially_cached(self):
        raid = make_raid(chunk_pages=1)
        kdd, _ = make_kdd(cache_pages=64, raid=raid, group_pages=4,
                          dirty_threshold=0.99, low_watermark=0.5)
        kdd.read(0)  # only 1 of 4 stripe pages cached
        kdd.write(0)
        kdd.finish()
        assert raid.counters.parity_reads >= 1  # stale parity was read
        assert not raid.stale_stripes


class TestMetadata:
    def test_metadata_batched_through_log(self):
        kdd, _ = make_kdd(cache_pages=2048, ways=64)
        for lba in range(300):
            kdd.read(lba)
        # 300 insertions but only ~1 metadata page write (341 entries/page)
        assert kdd.stats.meta_writes <= 1

    def test_meta_fraction_small(self):
        kdd, _ = make_kdd(cache_pages=2048, ways=64)
        for lba in range(500):
            kdd.read(lba)
            kdd.write(lba)
        kdd.finish()
        assert kdd.stats.meta_fraction < 0.1

    def test_eviction_writes_free_tombstone(self):
        kdd, _ = make_kdd(cache_pages=4, ways=4, group_pages=1)
        before = len(kdd.mlog.buffer) + kdd.mlog.meta_page_writes
        for lba in range(5):
            kdd.read(lba * 16)
        # 5 allocations + 1 eviction = 6 metadata records
        assert len(kdd.mlog.buffer) + kdd.mlog.meta_page_writes >= before + 1


class TestPinnedSets:
    def test_forced_cleaning_unpins_full_set(self):
        kdd, raid = make_kdd(cache_pages=4, ways=4, group_pages=64,
                             dirty_threshold=0.99, low_watermark=0.9)
        # fill the single set with old pages
        for lba in range(4):
            kdd.read(lba)
            kdd.write(lba)
        # a read miss for a new group must still be serviceable
        out = kdd.read(1000)
        assert not out.hit
        kdd.check_invariants()

    def test_bypass_counted_when_unallocatable(self):
        kdd, _ = make_kdd(cache_pages=4, ways=4, group_pages=1,
                          dirty_threshold=0.99, low_watermark=0.9)
        for lba in range(4):
            kdd.read(lba * 64)
            kdd.write(lba * 64)
        kdd.read(200 * 64)
        # either forced cleaning made room or the access bypassed
        assert kdd.stats.bypasses >= 0
        kdd.check_invariants()


@settings(max_examples=20, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, 100)), min_size=1, max_size=300
    )
)
def test_property_kdd_invariants_and_final_parity(ops):
    """Any access sequence: invariants hold throughout; after finish()
    no stripe has stale parity and no delta survives."""
    kdd, raid = make_kdd(cache_pages=32, ways=8, group_pages=8,
                         dirty_threshold=0.5, low_watermark=0.25)
    for is_read, lba in ops:
        kdd.access(lba, is_read)
    kdd.check_invariants()
    kdd.finish()
    kdd.check_invariants()
    assert not raid.stale_stripes
    assert kdd.sets.count(PageState.OLD) == 0
    assert len(kdd.staging) == 0
    assert not kdd.dez_pages
