"""Fast smoke tests for the figure drivers (full runs live in benchmarks/).

Each driver is executed at a micro scale to pin its row schema and the
invariants the harness depends on; the benchmark suite re-runs them at
meaningful scales with the paper-shape assertions.
"""

from repro.harness.figures import (
    ALL_FIGURES,
    _cache_sizes,
    fig4,
    fig5,
    fig9,
    fig10,
    fig11,
    table1,
    table2,
)
from repro.harness.sweep import SweepEngine
from repro.traces.workloads import ALL_WORKLOADS, workload_spec

MICRO = 0.0008


def test_registry_covers_every_table_and_figure():
    assert set(ALL_FIGURES) == {
        "table1", "fig4", "fig5", "fig6", "fig7", "fig8",
        "fig9", "fig10", "fig11", "table2",
    }


def test_table1_micro():
    r = table1(scale=MICRO)
    assert len(r.rows) == 4
    assert {row["workload"] for row in r.rows} == {"Fin1", "Fin2", "Hm0", "Web0"}


def test_fig4_micro():
    r = fig4(scale=MICRO, partition_fracs=(0.0059,), cache_fraction=0.2)
    assert len(r.rows) == 4
    for row in r.rows:
        assert 0.0 <= row["meta_io_pct"] < 100.0


def test_fig5_micro_schema_and_series():
    r = fig5(scale=MICRO, fractions=(0.05, 0.2))
    assert len(r.rows) == 2 * 2 * 5  # workloads x sizes x policies
    series = r.series(x="cache_pages", y="hit_ratio", key="policy")
    assert set(series) == {"wt", "leavo", "kdd-50", "kdd-25", "kdd-12"}


def test_fig9_micro():
    r = fig9(scale=MICRO, max_requests=400, target_iops=200)
    assert len(r.rows) == 4 * 5
    for row in r.rows:
        assert row["mean_ms"] >= 0


def test_fig10_fig11_micro():
    kw = dict(total_requests=200, working_set_pages=2000, cache_pages=1000,
              nthreads=4)
    r10 = fig10(**kw)
    assert len(r10.rows) == 4 * 5
    r11 = fig11(**kw)
    assert len(r11.rows) == 4 * 4
    for row in r11.rows:
        assert row["ssd_write_pages"] == (
            row["fills"] + row["data"] + row["delta"] + row["meta"]
        )


def test_cache_sizes_monotone_and_clamped():
    """At tiny scales the 64-page floor must not yield duplicate or
    larger-than-footprint sizes (the figure x-axes stay monotone)."""
    for scale in (0.0001, 0.0005, 0.001, 0.004, 0.01):
        for name in ALL_WORKLOADS:
            sizes = _cache_sizes(name, scale)
            assert sizes == sorted(sizes)
            assert len(sizes) == len(set(sizes))
            unique = workload_spec(name, scale).unique_pages
            assert all(s <= max(64, unique) for s in sizes)
            assert all(s <= unique for s in sizes if unique >= 64)


def test_cache_sizes_collapse_dedupes():
    # Fin2 at scale 0.0005 has a ~200-page footprint: every fraction
    # collapses onto the 64-page floor, which must yield one size.
    assert _cache_sizes("Fin2", 0.0005) == [64]


def test_fig4_parallel_engine_matches_serial():
    kwargs = dict(scale=MICRO, partition_fracs=(0.0039, 0.0098),
                  cache_fraction=0.2)
    serial = fig4(**kwargs)
    parallel = fig4(engine=SweepEngine(jobs=2), **kwargs)
    assert serial.rows == parallel.rows
    assert parallel.timing["jobs"] == 2
    assert parallel.timing["executed"] == len(parallel.rows)


def test_figures_carry_sweep_timing():
    r = table1(scale=MICRO)
    assert r.timing is not None
    assert r.timing["cells"] == 4
    assert "sweep:" in r.render()


def test_table2_micro():
    r = table2(total_requests=300, working_set_pages=2000, cache_pages=1200)
    assert {row["policy"] for row in r.rows} == {"wt", "wa", "leavo", "kdd"}
    for row in r.rows:
        assert row["io_latency"] in ("Low", "High")
        assert row["ssd_endurance"] in ("Good", "Bad")
