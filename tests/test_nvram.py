"""Tests for the NVRAM staging and metadata buffers."""

import pytest

from repro.delta.packer import DELTA_HEADER_BYTES
from repro.errors import ConfigError
from repro.nvram import MappingEntry, MetadataBuffer, PageState, StagingBuffer


class TestStagingBuffer:
    def test_put_get_remove(self):
        b = StagingBuffer(capacity_bytes=4096)
        b.put(1, 100)
        assert 1 in b
        assert b.get(1).size == 100
        assert b.remove(1)
        assert not b.remove(1)

    def test_coalescing_replaces_same_page(self):
        b = StagingBuffer(capacity_bytes=4096)
        b.put(1, 100)
        b.put(1, 200)
        assert len(b) == 1
        assert b.get(1).size == 200
        assert b.coalesced == 1
        assert b.used_bytes == 200 + DELTA_HEADER_BYTES

    def test_capacity_enforced(self):
        b = StagingBuffer(capacity_bytes=256)
        b.put(1, 200)
        with pytest.raises(ConfigError):
            b.put(2, 200)

    def test_would_fit_after_coalesce(self):
        b = StagingBuffer(capacity_bytes=256)
        b.put(1, 200)
        assert b.would_fit_after_coalesce(1, 240)  # replaces the old one
        assert not b.would_fit_after_coalesce(2, 240)

    def test_drain_is_fifo_and_empties(self):
        b = StagingBuffer(capacity_bytes=4096)
        b.put(3, 10)
        b.put(1, 10)
        b.put(2, 10)
        out = b.drain()
        assert [d.lba for d in out] == [3, 1, 2]
        assert len(b) == 0 and b.used_bytes == 0

    def test_snapshot_is_nondestructive(self):
        b = StagingBuffer(capacity_bytes=4096)
        b.put(1, 10)
        assert [d.lba for d in b.snapshot()] == [1]
        assert len(b) == 1

    def test_zero_size_rejected(self):
        b = StagingBuffer(capacity_bytes=4096)
        with pytest.raises(ConfigError):
            b.put(1, 0)

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ConfigError):
            StagingBuffer(capacity_bytes=4)


class TestMetadataBuffer:
    def entry(self, lba, state=PageState.CLEAN):
        return MappingEntry(lba_raid=lba, state=state, lba_daz=lba + 1000)

    def test_capacity_from_page_size(self):
        b = MetadataBuffer(page_size=4096, entry_bytes=12)
        assert b.capacity_entries == 341

    def test_put_and_coalesce(self):
        b = MetadataBuffer(page_size=64, entry_bytes=16)
        b.put(self.entry(1))
        b.put(self.entry(2))
        b.put(self.entry(1, PageState.FREE))
        assert len(b) == 2
        assert b.coalesced == 1
        assert b.get(1).state is PageState.FREE

    def test_full_rejects_new_keys_but_takes_updates(self):
        b = MetadataBuffer(page_size=32, entry_bytes=16)  # 2 entries
        b.put(self.entry(1))
        b.put(self.entry(2))
        assert b.full
        b.put(self.entry(2, PageState.OLD))  # coalesce is fine
        with pytest.raises(ConfigError):
            b.put(self.entry(3))

    def test_drain_preserves_insertion_order(self):
        b = MetadataBuffer(page_size=4096)
        for lba in (5, 3, 9):
            b.put(self.entry(lba))
        assert [e.lba_raid for e in b.drain()] == [5, 3, 9]
        assert len(b) == 0

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigError):
            MetadataBuffer(page_size=8, entry_bytes=16)
