"""Import graph, layering contract, and analyzer determinism.

Covers the project loader (edge kinds, relative-import resolution),
the RPR101/102/103 layering analyses on fixture trees, the CLI exit
codes, and the hypothesis property that findings are byte-identical
under shuffled file discovery order.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from tests.analyze_fixtures import write_fixture_tree
from repro.devtools.analyze import Project, check_layering
from repro.devtools.analyze.cli import analyze_project
from repro.devtools.analyze.cli import main as analyze_main
from repro.devtools.analyze.graphio import graph_dot, graph_json
from repro.devtools.analyze.project import EDGE_DEFERRED, EDGE_TOP, EDGE_TYPING

SRC_REPRO = Path(__file__).resolve().parent.parent / "src" / "repro"


def codes(findings):
    return sorted({f.code for f in findings})


class TestProjectLoader:
    def test_module_naming_and_packages(self, analyze_tree):
        project = analyze_tree({
            "units.py": "KIB = 1024\n",
            "sim/api.py": "from ..units import KIB\n",
        })
        assert "repro" in project.modules
        assert "repro.units" in project.modules
        assert "repro.sim.api" in project.modules
        assert project.modules["repro.sim.api"].top_package == "sim"
        assert project.modules["repro.units"].top_package == "units"

    def test_edge_kinds(self, analyze_tree):
        project = analyze_tree({
            "units.py": "KIB = 1024\n",
            "stats/a.py": "x = 1\n",
            "sim/api.py": """\
                from typing import TYPE_CHECKING

                from ..units import KIB

                if TYPE_CHECKING:
                    from ..stats.a import x

                def f():
                    from ..stats import a
                    return a
            """,
        })
        kinds = {(e.dst, e.kind) for e in project.edges
                 if e.src == "repro.sim.api"}
        assert ("repro.units", EDGE_TOP) in kinds
        assert ("repro.stats.a", EDGE_TYPING) in kinds
        assert ("repro.stats.a", EDGE_DEFERRED) in kinds

    def test_relative_import_resolution(self, analyze_tree):
        project = analyze_tree({
            "sim/a.py": "from .b import helper\n",
            "sim/b.py": "def helper():\n    return 1\n",
        })
        edge = [e for e in project.edges if e.src == "repro.sim.a"]
        assert edge and edge[0].dst == "repro.sim.b"
        assert edge[0].symbol == "helper"


class TestLayering:
    def test_clean_tree_has_no_findings(self, analyze_tree):
        project = analyze_tree({
            "units.py": "KIB = 1024\n",
            "sim/api.py": "from ..units import KIB\n",
            "harness/run.py": "from ..sim.api import KIB\n",
        })
        assert check_layering(project) == []

    def test_import_cycle_is_rpr101(self, analyze_tree):
        project = analyze_tree({
            "sim/a.py": "from .b import g\n\ndef f():\n    return g\n",
            "sim/b.py": "from .a import f\n\ndef g():\n    return f\n",
        })
        findings = check_layering(project)
        assert codes(findings) == ["RPR101"]
        assert "repro.sim.a -> repro.sim.b" in findings[0].message or \
            "repro.sim.b -> repro.sim.a" in findings[0].message

    def test_deferred_import_breaks_no_cycle(self, analyze_tree):
        project = analyze_tree({
            "sim/a.py": "from .b import g\n\ndef f():\n    return g\n",
            "sim/b.py": "def g():\n    from .a import f\n    return f\n",
        })
        assert [f for f in check_layering(project) if f.code == "RPR101"] == []

    def test_upward_import_is_rpr102(self, analyze_tree):
        project = analyze_tree({
            "harness/runner.py": "def build():\n    return 1\n",
            "faults/exp.py": "from ..harness.runner import build\n",
        })
        findings = check_layering(project)
        assert codes(findings) == ["RPR102"]
        assert "simulation" in findings[0].message
        assert "application" in findings[0].message

    def test_deferred_upward_import_still_rpr102(self, analyze_tree):
        project = analyze_tree({
            "harness/runner.py": "def build():\n    return 1\n",
            "sim/api.py": """\
                def f():
                    from ..harness.runner import build
                    return build()
            """,
        })
        assert codes(check_layering(project)) == ["RPR102"]

    def test_typing_only_upward_import_is_exempt(self, analyze_tree):
        project = analyze_tree({
            "harness/runner.py": "class Runner:\n    pass\n",
            "sim/api.py": """\
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from ..harness.runner import Runner

                def f(r: "Runner") -> None:
                    pass
            """,
        })
        assert check_layering(project) == []

    def test_engine_core_ownership_is_rpr103(self, analyze_tree):
        project = analyze_tree({
            "engine/core.py": "class EventLoop:\n    pass\n",
            "engine/system.py": "from .core import EventLoop\n",
            "sim/api.py": "from ..engine.core import EventLoop\n",
        })
        findings = check_layering(project)
        assert codes(findings) == ["RPR103"]
        assert findings[0].relpath == "sim/api.py"
        assert "single clock owner" in findings[0].message


class TestGraphExport:
    def test_json_and_dot_are_stable(self, analyze_tree):
        project = analyze_tree({
            "units.py": "KIB = 1024\n",
            "sim/api.py": "from ..units import KIB\n",
        })
        doc = json.loads(graph_json(project))
        names = [m["name"] for m in doc["modules"]]
        assert names == sorted(names)
        assert any(e["src"] == "repro.sim.api" and e["dst"] == "repro.units"
                   for e in doc["edges"])
        dot = graph_dot(project)
        assert dot.startswith("// Generated")
        assert '"sim" -> "units"' in dot


class TestCli:
    def test_clean_fixture_exits_zero(self, tmp_path, capsys):
        pkg = write_fixture_tree(tmp_path, {
            "units.py": "KIB = 1024\n",
            "sim/api.py": "from ..units import KIB\n\nCHUNK = 4 * KIB\n",
        })
        assert analyze_main([str(pkg)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_cycle_fixture_exits_nonzero_with_stable_code(
            self, tmp_path, capsys):
        pkg = write_fixture_tree(tmp_path, {
            "sim/a.py": "from .b import g\n\ndef f():\n    return g\n",
            "sim/b.py": "from .a import f\n\ndef g():\n    return f\n",
        })
        assert analyze_main([str(pkg), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert list(doc["counts"]) == ["RPR101"]

    def test_baseline_grandfathers_findings(self, tmp_path, capsys):
        pkg = write_fixture_tree(tmp_path, {
            "harness/runner.py": "def build():\n    return 1\n",
            "faults/exp.py":
                "from ..harness.runner import build\n\nPOLICY = build\n",
        })
        baseline = tmp_path / "baseline.json"
        assert analyze_main([str(pkg), "--baseline", str(baseline),
                             "--update-baseline"]) == 0
        capsys.readouterr()
        assert analyze_main([str(pkg), "--baseline", str(baseline)]) == 0

    def test_kdd_repro_subcommand_delegation(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro.harness.cli", "analyze",
             str(SRC_REPRO), "--format", "json"],
            capture_output=True, text=True,
            cwd=str(SRC_REPRO.parent.parent),
            env={**os.environ, "PYTHONPATH": "src"},
        )
        assert out.returncode == 0, out.stderr
        assert json.loads(out.stdout)["findings"] == []

    def test_effects_flag_runs_only_rpr2xx(self, tmp_path, capsys):
        # The fixture violates both RPR109 (unused import) and RPR201;
        # --effects must report only the effect-contract family.
        pkg = write_fixture_tree(tmp_path, {
            "contracts.py": "def mutates_membership(func):\n    return func\n",
            "cache/sets.py": (
                "import json\n\n"
                "class CacheSets:\n"
                "    def __init__(self):\n"
                "        self._index = {}\n"
                "        self.mutations = 0\n\n"
                "    def alloc(self, lba):\n"
                "        self._index[lba] = lba\n"
            ),
        })
        assert analyze_main([str(pkg), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert sorted(doc["counts"]) == ["RPR109", "RPR201"]
        assert analyze_main([str(pkg), "--effects", "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert sorted(doc["counts"]) == ["RPR201"]

    def test_effects_report_export(self, tmp_path, capsys):
        report = tmp_path / "effects-report.json"
        assert analyze_main([str(SRC_REPRO), "--effects",
                             "--effects-report", str(report)]) == 0
        assert "clean" in capsys.readouterr().out
        doc = json.loads(report.read_text(encoding="utf-8"))
        assert doc["membership"]["choke_points"] == \
            ["repro.cache.sets:CacheSets._membership_update"]

    def test_kdd_repro_analyze_effects_smoke(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro.harness.cli", "analyze",
             str(SRC_REPRO), "--effects", "--format", "json"],
            capture_output=True, text=True,
            cwd=str(SRC_REPRO.parent.parent),
            env={**os.environ, "PYTHONPATH": "src"},
        )
        assert out.returncode == 0, out.stderr
        assert json.loads(out.stdout)["findings"] == []


DETERMINISM_FILES = {
    "units.py": "KIB = 1024\n",
    "harness/runner.py": "def build():\n    return 1\n",
    "faults/exp.py": "from ..harness.runner import build\n",
    "sim/a.py": "from .b import g\n\ndef f():\n    return g\n",
    "sim/b.py": "from .a import f\n\ndef g():\n    return f\n",
    "engine/core.py": "class EventLoop:\n    pass\n",
    "sim/clock.py": "from ..engine.core import EventLoop\n",
}


@pytest.fixture(scope="module")
def determinism_pkg(tmp_path_factory):
    return write_fixture_tree(tmp_path_factory.mktemp("det"),
                              DETERMINISM_FILES)


class TestDeterminism:
    def render(self, project):
        findings = analyze_project(project)
        return json.dumps(
            [f.to_json() for f in findings], sort_keys=True
        ) + graph_json(project) + graph_dot(project)

    @given(rng=st.randoms(use_true_random=False))
    def test_findings_invariant_under_discovery_order(
            self, rng, determinism_pkg):
        files = sorted(p for p in determinism_pkg.rglob("*.py"))
        baseline = self.render(Project.load([determinism_pkg]))
        shuffled = list(files)
        rng.shuffle(shuffled)
        assert self.render(Project.load(shuffled)) == baseline
