"""Behavioural tests for the baseline cache policies (WT/WA/WB/LeavO/Nossd)."""


from repro.cache import (
    CacheConfig,
    LeavO,
    Nossd,
    WriteAround,
    WriteBack,
    WriteThrough,
)
from repro.nvram import PageState
from repro.raid import RAIDArray, RaidLevel


def make_raid(**kw):
    kw.setdefault("level", RaidLevel.RAID5)
    kw.setdefault("ndisks", 5)
    kw.setdefault("chunk_pages", 4)
    kw.setdefault("pages_per_disk", 4096)
    return RAIDArray(**kw)


def cfg(cache_pages=64, **kw):
    kw.setdefault("ways", 16)
    kw.setdefault("group_pages", 16)
    return CacheConfig(cache_pages=cache_pages, **kw)


class TestNossd:
    def test_everything_is_a_miss(self):
        p = Nossd(cfg(), make_raid())
        p.read(0)
        p.write(1)
        assert p.stats.hits == 0
        assert p.stats.read_misses == 1 and p.stats.write_misses == 1
        assert p.stats.ssd_writes == 0

    def test_write_pays_small_write_penalty(self):
        raid = make_raid()
        p = Nossd(cfg(), raid)
        out = p.write(0)
        assert len(out.fg_disk_ops) == 4  # 2 reads + 2 writes


class TestWriteThrough:
    def test_read_miss_fills_then_hits(self):
        p = WriteThrough(cfg(), make_raid())
        out1 = p.read(5)
        assert not out1.hit and out1.bg_ssd_writes == 1
        out2 = p.read(5)
        assert out2.hit and out2.fg_ssd_reads == 1
        assert p.stats.fill_writes == 1

    def test_write_goes_to_both_ssd_and_raid(self):
        p = WriteThrough(cfg(), make_raid())
        out = p.write(3)
        assert out.fg_disk_ops  # parity update on RAID
        assert p.stats.data_writes == 1
        out2 = p.write(3)  # hit: overwrite in place
        assert out2.hit and p.stats.data_writes == 2

    def test_write_hit_still_pays_parity(self):
        p = WriteThrough(cfg(), make_raid())
        p.write(3)
        out = p.write(3)
        assert len(out.fg_disk_ops) == 4  # rmw every time

    def test_lru_eviction_when_set_full(self):
        p = WriteThrough(cfg(cache_pages=4, ways=4, group_pages=1), make_raid())
        for lba in range(5):  # 5th forces an eviction
            p.read(lba * 16)  # scatter groups; all land in the only set
        assert len(p.sets) == 4
        assert p.stats.bypasses == 0
        p.check_invariants()

    def test_no_stale_parity_ever(self):
        raid = make_raid()
        p = WriteThrough(cfg(), raid)
        for lba in range(20):
            p.write(lba)
            p.write(lba)
        assert not raid.stale_stripes


class TestWriteAround:
    def test_writes_never_touch_ssd(self):
        p = WriteAround(cfg(), make_raid())
        for lba in range(10):
            p.write(lba)
        assert p.stats.ssd_writes == 0

    def test_write_invalidates_cached_copy(self):
        p = WriteAround(cfg(), make_raid())
        p.read(5)
        assert 5 in p.sets
        p.write(5)
        assert 5 not in p.sets  # stale copy dropped
        out = p.read(5)
        assert not out.hit

    def test_read_misses_fill(self):
        p = WriteAround(cfg(), make_raid())
        p.read(1)
        assert p.stats.fill_writes == 1


class TestWriteBack:
    def test_write_hits_avoid_raid(self):
        p = WriteBack(cfg(), make_raid())
        p.write(1)
        out = p.write(1)
        assert out.hit and not out.fg_disk_ops
        assert p.dirty_pages == 1

    def test_eviction_flushes_dirty(self):
        raid = make_raid()
        p = WriteBack(cfg(cache_pages=4, ways=4, group_pages=1), raid)
        for lba in range(5):
            p.write(lba * 16)
        # one dirty page must have been flushed to make room
        assert raid.counters.data_writes >= 1
        p.check_invariants()

    def test_finish_flushes_all_dirty(self):
        raid = make_raid()
        p = WriteBack(cfg(), raid)
        for lba in range(8):
            p.write(lba)
        p.finish()
        assert p.dirty_pages == 0
        assert raid.counters.data_writes >= 8


class TestLeavO:
    def test_write_hit_keeps_old_and_new(self):
        p = LeavO(cfg(), make_raid())
        p.read(5)  # cache it (clean)
        out = p.write(5)
        assert out.hit
        line = p.sets.lookup(5)
        assert line.state is PageState.OLD
        assert line.aux is not None  # twin slot with the latest version
        assert p.sets.borrowed_slots == 1

    def test_write_hit_delays_parity(self):
        raid = make_raid()
        p = LeavO(cfg(), raid)
        p.read(5)
        out = p.write(5)
        assert len(out.fg_disk_ops) == 1  # data write only, no parity
        assert raid.stale_stripes

    def test_second_write_hit_overwrites_twin(self):
        p = LeavO(cfg(), make_raid())
        p.read(5)
        p.write(5)
        borrowed_before = p.sets.borrowed_slots
        p.write(5)
        assert p.sets.borrowed_slots == borrowed_before  # no third copy

    def test_metadata_persisted_per_update(self):
        p = LeavO(cfg(), make_raid())
        # every insert/update pushes meta_bytes_per_update towards a page
        n = (p.config.page_size // LeavO.meta_bytes_per_update) + 1
        for lba in range(n):
            p.read(lba)
        assert p.stats.meta_writes >= 1

    def test_cleaning_promotes_old_to_clean(self):
        raid = make_raid()
        p = LeavO(cfg(cache_pages=16, ways=16, dirty_threshold=0.3,
                      low_watermark=0.1), raid)
        for lba in range(6):
            p.read(lba)
            p.write(lba)  # six old/new pairs = 12 pinned of 16
        assert not raid.stale_stripes or p.sets.count(PageState.OLD) < 6
        p.finish()
        assert not raid.stale_stripes
        assert p.sets.count(PageState.OLD) == 0
        assert p.sets.borrowed_slots == 0
        p.check_invariants()

    def test_consumes_more_space_than_wt(self):
        """The paper's core criticism: redundant versions lower hit ratio."""
        raid = make_raid()
        cfg_small = cfg(cache_pages=8, ways=8, group_pages=1,
                        dirty_threshold=1.0, low_watermark=0.5)
        p = LeavO(cfg_small, raid)
        for lba in range(4):
            p.read(lba * 16)
            p.write(lba * 16)
        # 4 lines + 4 twins = full cache of 8 slots
        assert len(p.sets) + p.sets.borrowed_slots == 8

    def test_finish_repairs_all_parity(self):
        raid = make_raid()
        p = LeavO(cfg(), raid)
        for lba in range(10):
            p.read(lba)
            p.write(lba)
        p.finish()
        assert not raid.stale_stripes
