"""Tests for the locality analysis tools."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.traces import (
    Trace,
    lru_stack_distances,
    reuse_profile,
    uniform_workload,
    working_set_sizes,
    write_hit_potential,
    zipf_workload,
)
from repro.traces.record import empty_records


def trace_from_pages(pages, is_read=True):
    rec = empty_records(len(pages))
    for i, p in enumerate(pages):
        rec[i] = (float(i), p, 1, is_read)
    return Trace(rec)


class TestStackDistances:
    def test_cold_misses_are_minus_one(self):
        d = lru_stack_distances(np.array([1, 2, 3]))
        assert d.tolist() == [-1, -1, -1]

    def test_immediate_reuse_distance_zero(self):
        d = lru_stack_distances(np.array([7, 7]))
        assert d.tolist() == [-1, 0]

    def test_classic_example(self):
        # a b c a : distance of the second 'a' is 2 (b and c in between)
        d = lru_stack_distances(np.array([1, 2, 3, 1]))
        assert d.tolist() == [-1, -1, -1, 2]

    def test_duplicates_between_reuses_counted_once(self):
        # a b b a : only one distinct page between the two a's
        d = lru_stack_distances(np.array([1, 2, 2, 1]))
        assert d[3] == 1

    def test_empty(self):
        assert len(lru_stack_distances(np.array([], dtype=np.int64))) == 0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 10), max_size=60))
    def test_property_matches_naive_stack(self, pages):
        """Fenwick implementation equals the naive LRU-stack simulation."""
        arr = np.array(pages, dtype=np.int64)
        fast = lru_stack_distances(arr)
        stack: list[int] = []
        for i, p in enumerate(pages):
            if p in stack:
                idx = stack.index(p)
                assert fast[i] == idx, (i, pages)
                stack.pop(idx)
            else:
                assert fast[i] == -1
            stack.insert(0, p)


class TestReuseProfile:
    def test_hit_ratio_bound_monotone_in_cache(self):
        tr = zipf_workload(5000, 500, alpha=1.0, seed=1)
        prof = reuse_profile(tr)
        h_small = prof.hit_ratio_for_cache(50)
        h_large = prof.hit_ratio_for_cache(500)
        assert h_small <= h_large
        assert prof.reuse_fraction > 0.5

    def test_full_cache_hits_all_reuses(self):
        tr = trace_from_pages([1, 2, 1, 2, 1])
        prof = reuse_profile(tr)
        assert prof.hit_ratio_for_cache(10) == pytest.approx(3 / 5)

    def test_mincache_for_hit_ratio(self):
        tr = trace_from_pages([1, 2, 3, 1, 2, 3])
        prof = reuse_profile(tr)  # 3 reuses at distance 2 each
        assert prof.mincache_for_hit_ratio(0.5) == 3
        with pytest.raises(ConfigError):
            prof.mincache_for_hit_ratio(0.99)
        with pytest.raises(ConfigError):
            prof.mincache_for_hit_ratio(1.5)

    def test_writes_only_profile(self):
        rec = empty_records(4)
        rec[0] = (0.0, 1, 1, True)
        rec[1] = (1.0, 1, 1, False)
        rec[2] = (2.0, 1, 1, False)
        rec[3] = (3.0, 2, 1, True)
        prof = reuse_profile(Trace(rec), writes_only=True)
        assert prof.accesses == 2
        assert prof.cold_misses == 1


class TestWorkingSet:
    def test_wss_counts_distinct_pages_per_window(self):
        tr = trace_from_pages([1, 1, 2, 3, 3, 3])
        wss = working_set_sizes(tr, window=2.0)  # times 0..5
        assert wss.tolist() == [1, 2, 1]

    def test_invalid_window(self):
        with pytest.raises(ConfigError):
            working_set_sizes(trace_from_pages([1]), window=0)

    def test_wss_bins_by_floored_offset(self):
        """Regression pin: binning floors the time offset (RPR302 fix).

        The bin index must be ``floor((t - t0) / window)`` — computed
        via ``np.floor_divide``, never a bare truncating ``astype`` —
        and every access must land in exactly one bin.
        """
        tr = trace_from_pages([1, 2, 3, 4])  # times 0, 1, 2, 3
        wss = working_set_sizes(tr, window=0.4)
        offsets = tr.records["time"] - tr.records["time"][0]
        expected_bins = np.floor_divide(offsets, 0.4).astype(np.int64)
        assert len(wss) == int(expected_bins[-1]) + 1
        occupied = sorted(np.flatnonzero(wss).tolist())
        assert occupied == sorted(set(expected_bins.tolist()))
        assert int(wss.sum()) == 4

    def test_wss_fractional_window_exact_counts(self):
        # times 0..5 with window 2.5: bins floor to [0, 0, 0, 1, 1, 2]
        tr = trace_from_pages([1, 1, 2, 3, 3, 3])
        wss = working_set_sizes(tr, window=2.5)
        assert wss.tolist() == [2, 1, 1]


class TestWriteHitPotential:
    def test_all_rewrites_hit_big_cache(self):
        tr = trace_from_pages([5, 5, 5], is_read=False)
        assert write_hit_potential(tr, cache_pages=10) == pytest.approx(2 / 3)

    def test_tiny_cache_kills_potential(self):
        tr = zipf_workload(2000, 1000, alpha=0.2, read_ratio=0.0, seed=3)
        assert write_hit_potential(tr, 2) < write_hit_potential(tr, 800)

    def test_reads_populate_cache_for_writes(self):
        rec = empty_records(2)
        rec[0] = (0.0, 9, 1, True)   # read fills
        rec[1] = (1.0, 9, 1, False)  # write hits
        assert write_hit_potential(Trace(rec), 10) == 1.0

    def test_predicts_kdd_advantage(self):
        """Workloads with higher write-hit potential benefit more from KDD."""
        from repro.harness import simulate_policy

        hot = zipf_workload(6000, 600, alpha=1.2, read_ratio=0.2, seed=4,
                            name="hot")
        cold = uniform_workload(6000, 6000, read_ratio=0.2, seed=4,
                                name="cold")
        assert write_hit_potential(hot, 300) > write_hit_potential(cold, 300)
        wt_hot = simulate_policy("wt", hot, 300, seed=1).ssd_write_pages
        kdd_hot = simulate_policy("kdd", hot, 300, seed=1).ssd_write_pages
        wt_cold = simulate_policy("wt", cold, 300, seed=1).ssd_write_pages
        kdd_cold = simulate_policy("kdd", cold, 300, seed=1).ssd_write_pages
        assert (1 - kdd_hot / wt_hot) > (1 - kdd_cold / wt_cold)
