"""Generate the timing-equivalence goldens (tests/test_engine_equivalence.py).

The event-engine refactor (``repro.engine``) must be behaviour-
preserving: latency summaries and fault event logs stay numerically
identical to the pre-refactor ``TimedSystem`` implementation, except for
the documented ``fg_compute`` critical-path fix, whose (tiny) delta the
equivalence suite asserts explicitly.

Usage::

    PYTHONPATH=src python tests/goldens/generate_timing_goldens.py pre
    PYTHONPATH=src python tests/goldens/generate_timing_goldens.py post

``pre`` was run once against the pre-refactor tree and its output is
committed; ``post`` re-runs the same cells on the current tree and
stores them alongside, so the test can assert byte-stability of the
refactored engine *and* the exact relationship to the legacy numbers.

``post`` was regenerated once more for the crash-consistency work: the
KDD write-hit path now stages the superseding delta *before*
invalidating its DEZ predecessor (a freed delta slot can otherwise be
reused while the persisted mapping still points at it).  The later slot
release shifts DEZ placement slightly; the only golden movement is one
background metadata page commit in one closed-loop KDD cell (latency
columns byte-identical).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

GOLDEN_PATH = Path(__file__).with_name("timing_goldens.json")

#: Policies that never emit ``fg_compute``: their rows must be
#: byte-identical across the refactor.  KDD compresses deltas on the
#: critical path, so its rows carry the documented fg_compute delta.
EXACT_POLICIES = ("nossd", "wa", "wt", "leavo")
COMPUTE_POLICIES = ("kdd",)


def replay_cells():
    """A reduced fig9 grid: every policy over one write- and one
    read-dominant trace, open-loop, near saturation (queueing builds)."""
    from repro.harness.sweep import SweepCell, workload_trace
    from repro.traces.workloads import workload_spec

    scale, target_iops = 0.002, 120.0
    cells = []
    for name in ("Fin1", "Fin2"):
        trace = workload_trace(name, scale)
        time_scale = workload_spec(name, scale).iops / target_iops
        for policy in (*EXACT_POLICIES, *COMPUTE_POLICIES):
            cells.append(
                SweepCell(
                    kind="replay",
                    policy=policy,
                    trace=trace,
                    cache_pages=512,
                    seed=0,
                    params=(
                        ("max_requests", 1500),
                        ("mean_compression", 0.25),
                        ("time_scale", time_scale),
                    ),
                )
            )
    return cells


def fio_cells():
    """A reduced fig10 grid: closed loop, 8 threads, two read rates."""
    from repro.harness.sweep import SweepCell

    cells = []
    for read_rate in (0.0, 0.5):
        for policy in (*EXACT_POLICIES, *COMPUTE_POLICIES):
            cells.append(
                SweepCell(
                    kind="fio",
                    policy=policy,
                    cache_pages=8000,
                    seed=0,
                    params=(
                        ("mean_compression", 0.25),
                        ("nthreads", 8),
                        ("read_rate", read_rate),
                        ("total_requests", 1200),
                        ("working_set_pages", 20_000),
                    ),
                )
            )
    return cells


def faults_cells():
    """Fault-sweep cells: retry policies under URE + timeout injection."""
    from repro.harness.faultsweep import faults_cell
    from repro.harness.sweep import trace_desc

    trace = trace_desc("uniform", n_requests=400, universe_pages=8192,
                       read_ratio=0.6, seed=0, name="golden-faults")
    return [
        faults_cell(policy, trace, 128, ure_rate=0.01, timeout_rate=0.02,
                    retry=retry)
        for policy in ("wt", "kdd")
        for retry in ("none", "backoff")
    ]


def faulty_event_log():
    """One scripted FaultyTimedSystem run: latency + counters + event log
    + (legacy) utilisation, covering escalation and device failure."""
    from repro.cache import CacheConfig
    from repro.faults import FaultConfig, FaultyTimedSystem
    from repro.harness.runner import build_policy
    from repro.raid import RAIDArray, RaidLevel
    from repro.sim.openloop import replay_trace
    from repro.traces import uniform_workload

    raid = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=4,
                     pages_per_disk=4096)
    policy = build_policy(
        "wt", CacheConfig(cache_pages=128, ways=16, group_pages=16), raid
    )
    system = FaultyTimedSystem(
        policy,
        FaultConfig(seed=11, ure_rate=0.01, timeout_rate=0.02,
                    device_failures=(("disk1", 0.5),)),
        retry="backoff",
    )
    trace = uniform_workload(400, 4096, read_ratio=0.6, seed=5)
    rep = replay_trace(system, trace)
    return {
        "latency": rep.latency.row(),
        "mean_exact": rep.latency.mean,
        "fault_row": system.fault_row(),
        "events": system.schedule.event_rows(),
        "utilisation": system.utilisation(10.0),
    }


def rebuild_golden():
    """rebuild_under_load: rebuild finish time and foreground latency."""
    from repro.cache import CacheConfig
    from repro.faults import FaultConfig, FaultyTimedSystem, rebuild_under_load
    from repro.harness.runner import build_policy
    from repro.raid import RAIDArray, RaidLevel
    from repro.traces import uniform_workload

    raid = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=4,
                     pages_per_disk=256)
    policy = build_policy(
        "wt", CacheConfig(cache_pages=64, ways=16, group_pages=16), raid
    )
    system = FaultyTimedSystem(policy, FaultConfig(seed=3))
    raid.fail_disk(1)
    reqs = list(uniform_workload(50, 1024, seed=4))
    report, done = rebuild_under_load(system, 1, iter(reqs), batch_stripes=2)
    return {
        "pages_rebuilt": report.pages_rebuilt,
        "rebuild_done": done,
        "mean_exact": system.recorder.summary().mean,
        "latency": system.recorder.summary().row(),
    }


def collect():
    from repro.harness.sweep import SweepEngine

    engine = SweepEngine(jobs=1)
    return {
        "replay": [dict(r) for r in engine.run(replay_cells()).rows],
        "fio": [dict(r) for r in engine.run(fio_cells()).rows],
        "faults": [dict(r) for r in engine.run(faults_cells()).rows],
        "faulty_run": faulty_event_log(),
        "rebuild": rebuild_golden(),
    }


def main() -> int:
    stage = sys.argv[1] if len(sys.argv) > 1 else "post"
    if stage not in ("pre", "post"):
        raise SystemExit("stage must be 'pre' or 'post'")
    payload = json.loads(GOLDEN_PATH.read_text()) if GOLDEN_PATH.exists() else {}
    payload[stage] = collect()
    GOLDEN_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote stage {stage!r} to {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
