"""Unit tests for the discrete-event engine package (repro.engine)."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig
from repro.engine import (
    FCFS,
    DiskResource,
    EventLoop,
    FaultPipelineHook,
    InstrumentationHook,
    OpRecord,
    Priority,
    PriorityFCFS,
    SSDResource,
)
from repro.errors import ConfigError, SimulationError
from repro.faults.retry import retry_policy
from repro.faults.schedule import FaultConfig, FaultSchedule
from repro.harness.runner import build_policy
from repro.raid import RAIDArray, RaidLevel
from repro.sim.openloop import replay_trace
from repro.sim.system import TimedSystem
from repro.traces import uniform_workload


def make_system(policy_name="wt", ndisks=4, pages_per_disk=4096,
                cache_pages=64, **kwargs):
    raid = RAIDArray(RaidLevel.RAID5, ndisks=ndisks, chunk_pages=4,
                     pages_per_disk=pages_per_disk)
    policy = build_policy(
        policy_name, CacheConfig(cache_pages=cache_pages, ways=4,
                                 group_pages=16), raid
    )
    return TimedSystem(policy, **kwargs)


# ---------------------------------------------------------------- EventLoop


def test_event_loop_orders_by_time_then_fifo():
    loop = EventLoop()
    seen = []
    loop.schedule(2.0, lambda t: seen.append("late"))
    loop.schedule(1.0, lambda t: seen.append("tie-a"))
    loop.schedule(1.0, lambda t: seen.append("tie-b"))
    loop.schedule(0.5, lambda t: seen.append("first"))
    assert loop.run() == 4
    assert seen == ["first", "tie-a", "tie-b", "late"]
    assert loop.now == 2.0
    assert loop.processed == 4


def test_event_loop_clock_is_monotone():
    loop = EventLoop()
    times = []
    loop.schedule(5.0, lambda t: times.append((t, loop.now)))
    loop.run()
    # a source handing over late work does not rewind the clock
    loop.schedule(1.0, lambda t: times.append((t, loop.now)))
    loop.run()
    assert times == [(5.0, 5.0), (1.0, 5.0)]


def test_event_loop_rejects_negative_time():
    with pytest.raises(ConfigError):
        EventLoop().schedule(-0.1, lambda t: None)


def test_event_loop_overflow_guard():
    loop = EventLoop()

    def reschedule(t):
        loop.schedule(t + 1.0, reschedule)

    loop.schedule(0.0, reschedule)
    with pytest.raises(SimulationError):
        loop.run(max_events=100)


# ---------------------------------------------------------------- OpRecord


def test_op_record_derived_fields_and_row():
    op = OpRecord(op_id=3, device="disk1", kind="read", npages=2,
                  priority="fg", tag="fg", submitted=1.0, start=1.5,
                  finish=2.5)
    assert op.queue_delay == 0.5
    assert op.service == 1.0
    row = op.row()
    assert row["op"] == 3 and row["device"] == "disk1"
    assert row["queue_delay"] == 0.5 and row["fault"] is None
    json.dumps(row)  # JSONL-ready


# ---------------------------------------------------------------- disciplines


def test_fcfs_queues_behind_the_device():
    disk = DiskResource()
    w1 = disk.serve(0, 1, True, 0.0)
    w2 = disk.serve(512, 1, True, 0.0)
    assert w2.start == w1.finish  # queued behind op 1
    w3 = disk.serve(0, 1, True, w2.finish + 1.0)
    assert w3.start == w2.finish + 1.0  # idle gap honoured


def test_priority_fcfs_defers_background_by_idle_gap():
    gap = 0.25
    disk = DiskResource(discipline=PriorityFCFS(bg_idle_gap=gap))
    fg = disk.serve(0, 1, True, 0.0, priority=Priority.FOREGROUND)
    bg = disk.serve(512, 1, True, 0.0, priority=Priority.BACKGROUND, tag="bg")
    assert bg.start == pytest.approx(fg.finish + gap)
    # foreground is never deferred by the gap
    fg2 = disk.serve(0, 1, True, bg.finish, priority=Priority.FOREGROUND)
    assert fg2.start == bg.finish


def test_priority_fcfs_with_zero_gap_reduces_to_fcfs():
    a = DiskResource(discipline=FCFS())
    b = DiskResource(discipline=PriorityFCFS(bg_idle_gap=0.0))
    for disk_page, pri in ((0, Priority.FOREGROUND), (512, Priority.BACKGROUND),
                           (4, Priority.BACKGROUND), (900, Priority.FOREGROUND)):
        wa = a.serve(disk_page, 1, True, 0.0, priority=pri)
        wb = b.serve(disk_page, 1, True, 0.0, priority=pri)
        assert (wa.start, wa.finish) == (wb.start, wb.finish)


def test_priority_fcfs_rejects_negative_gap():
    with pytest.raises(ConfigError):
        PriorityFCFS(bg_idle_gap=-1.0)


def test_ssd_channel_ties_break_by_lowest_index():
    ssd = SSDResource(channels=4)
    assert ssd._assign_channels(3) == [0, 1, 2]


# ---------------------------------------------------------------- accounting


def test_busy_time_includes_fault_stalls():
    schedule = FaultSchedule(FaultConfig(seed=2, timeout_rate=0.8))
    disk = DiskResource(faults=schedule.stream("disk0"),
                        retry=retry_policy("none"))
    total = 0.0
    for i in range(50):
        w = disk.serve(i * 8, 1, True, 0.0)
        total += w.finish - w.start
    assert disk.stall_time > 0.0, "seeded stream should have stalled"
    assert disk.busy_time == pytest.approx(total)
    assert disk.utilisation_time == disk.busy_time
    assert disk.busy_time > disk.busy_time - disk.stall_time >= 0.0


def test_utilisation_counts_stalls_end_to_end():
    system = make_system()
    faulty = FaultPipelineHook(
        FaultSchedule(FaultConfig(seed=2, timeout_rate=0.5)),
        retry_policy("backoff"),
    )
    system.add_hook(faulty)
    for req in uniform_workload(100, 2048, read_ratio=0.5, seed=1):
        system.submit_request(req)
    stalled = sum(d.stall_time for d in system.disks)
    assert stalled > 0.0
    util = system.utilisation(10.0)
    busy_only = {
        f"disk{i}": min(1.0, (d.busy_time - d.stall_time) / 10.0)
        for i, d in enumerate(system.disks)
    }
    assert any(util[d] > busy_only[d] for d in busy_only)


# ---------------------------------------------------------------- replay fix


def test_replay_duration_covers_queue_drain():
    system = make_system()
    trace = uniform_workload(80, 2048, read_ratio=0.2, seed=9)
    last_arrival = max(r.time for r in trace) * 1e-3
    rep = replay_trace(system, uniform_workload(80, 2048, read_ratio=0.2,
                                                seed=9), time_scale=1e-3)
    # arrivals are compressed 1000x: the pool falls behind and requests
    # drain long after the last arrival — the duration must cover that
    assert rep.duration > last_arrival
    assert rep.iops == pytest.approx(rep.requests / rep.duration)


# ---------------------------------------------------------------- hooks


def _run_instrumented(hook_order, requests, fault_seed):
    system = make_system()
    pipeline = FaultPipelineHook(
        FaultSchedule(FaultConfig(seed=fault_seed, ure_rate=0.05,
                                  timeout_rate=0.1)),
        retry_policy("backoff"),
    )
    instr = InstrumentationHook()
    hooks = {"fault-first": [pipeline, instr],
             "instr-first": [instr, pipeline]}[hook_order]
    for hook in hooks:
        system.add_hook(hook)
    for lba, npages, is_read, arrival in requests:
        system.submit(lba, npages, is_read, arrival)
    return instr, system.recorder.summary()


@settings(max_examples=25, deadline=None)
@given(
    raw=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4000),  # lba
            st.integers(min_value=1, max_value=4),  # npages
            st.booleans(),  # is_read
            st.floats(min_value=0.0, max_value=0.05,
                      allow_nan=False, allow_infinity=False),  # arrival
        ),
        min_size=1,
        max_size=20,
    ),
    fault_seed=st.integers(min_value=0, max_value=50),
)
def test_op_trace_invariant_under_hook_order(raw, fault_seed):
    """The instrumentation observes resources, not other hooks: the
    collected op trace and the latency summary are identical whether it
    is installed before or after the fault pipeline."""
    requests = sorted(raw, key=lambda r: r[3])
    a_instr, a_latency = _run_instrumented("fault-first", requests, fault_seed)
    b_instr, b_latency = _run_instrumented("instr-first", requests, fault_seed)
    assert a_instr.ops == b_instr.ops
    assert a_instr.requests == b_instr.requests
    assert a_latency == b_latency


# ---------------------------------------------------------------- instrumentation


@pytest.fixture(scope="module")
def instrumented():
    system = make_system()
    instr = InstrumentationHook()
    system.add_hook(instr)
    for req in uniform_workload(120, 2048, read_ratio=0.5, seed=3):
        system.submit_request(req)
    return instr


def test_instrumentation_collects_every_op(instrumented):
    assert len(instrumented.ops) > 0
    assert len(instrumented.requests) == 120
    # engine-wide op ids: strictly increasing in global service order
    ids = [op.op_id for op in instrumented.ops]
    assert ids == list(range(len(ids)))
    assert {op.device for op in instrumented.ops} <= set(instrumented.devices)


def test_instrumentation_queue_views(instrumented):
    stats = instrumented.queue_delay_stats()
    hist = instrumented.queue_depth_histogram()
    by_device = {}
    for op in instrumented.ops:
        by_device[op.device] = by_device.get(op.device, 0) + 1
    for device, count in by_device.items():
        assert stats[device]["ops"] == count
        assert sum(hist[device].values()) == count
        assert stats[device]["mean_queue_delay"] >= 0.0


def test_instrumentation_utilisation_timeline(instrumented):
    duration = max(op.finish for op in instrumented.ops)
    timeline = instrumented.utilisation_timeline(duration, bins=10)
    for device, fractions in timeline.items():
        assert len(fractions) == 10
        assert all(0.0 <= f <= 1.0 for f in fractions)
    busy = {op.device for op in instrumented.ops}
    assert any(sum(timeline[d]) > 0 for d in busy)
    with pytest.raises(ConfigError):
        instrumented.utilisation_timeline(0.0)
    with pytest.raises(ConfigError):
        instrumented.utilisation_timeline(1.0, bins=0)


def test_instrumentation_jsonl_export(tmp_path, instrumented):
    path = tmp_path / "trace.jsonl"
    n = instrumented.write_jsonl(str(path))
    lines = path.read_text().splitlines()
    assert n == len(lines) == len(instrumented.ops)
    first = json.loads(lines[0])
    assert {"op", "device", "kind", "submitted", "start", "finish",
            "queue_delay", "fault"} <= set(first)
    summary = instrumented.summary(duration=1.0, bins=5)
    json.dumps(summary)
    assert summary["ops"] == len(instrumented.ops)
