"""Tests for the page-mapped FTL: mapping, GC, write amplification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CapacityError, FlashError
from repro.flash import FREE, FlashGeometry, PageMappedFTL


def small_ftl(op=0.25, ppb=8, bpp=8) -> PageMappedFTL:
    geo = FlashGeometry(
        channels=2,
        dies_per_channel=1,
        planes_per_die=1,
        blocks_per_plane=bpp,
        pages_per_block=ppb,
    )
    return PageMappedFTL(geo, over_provisioning=op)


def test_write_then_read_maps_consistently():
    ftl = small_ftl()
    ppn = ftl.write(3)
    assert ftl.physical_of(3) == ppn
    assert ftl.read(3) == ppn
    assert ftl.host_writes == 1 and ftl.host_reads == 1


def test_read_unmapped_raises():
    ftl = small_ftl()
    with pytest.raises(FlashError):
        ftl.read(0)


def test_out_of_range_lpn_rejected():
    ftl = small_ftl()
    with pytest.raises(CapacityError):
        ftl.write(ftl.exported_pages)
    with pytest.raises(CapacityError):
        ftl.read(-1)


def test_overwrite_moves_physical_page():
    ftl = small_ftl()
    p1 = ftl.write(0)
    p2 = ftl.write(0)
    assert p1 != p2
    assert ftl.physical_of(0) == p2


def test_trim_unmaps():
    ftl = small_ftl()
    ftl.write(5)
    ftl.trim(5)
    assert not ftl.is_mapped(5)
    ftl.trim(5)  # idempotent


def test_writes_spread_across_planes():
    ftl = small_ftl()
    p0 = ftl.write(0)
    p1 = ftl.write(1)
    geo = ftl.geometry
    assert geo.plane_of_block(p0 // geo.pages_per_block) != geo.plane_of_block(
        p1 // geo.pages_per_block
    )


def test_gc_reclaims_overwritten_space():
    ftl = small_ftl(op=0.25)
    # Hammer a small working set; without GC this exhausts the 128-page device.
    for i in range(1000):
        ftl.write(i % 4)
    assert ftl.gc_runs > 0
    assert ftl.host_writes == 1000
    assert ftl.nand_writes >= ftl.host_writes
    ftl.check_invariants()


def test_write_amplification_at_least_one():
    ftl = small_ftl()
    for i in range(500):
        ftl.write(i % 8)
    assert ftl.write_amplification >= 1.0


def test_sequential_overwrite_low_waf():
    """Whole-device sequential overwrite invalidates whole blocks: WAF ~ 1."""
    ftl = small_ftl(op=0.25)
    n = ftl.exported_pages
    for _sweep in range(6):
        for lpn in range(n):
            ftl.write(lpn)
    assert ftl.write_amplification < 1.6
    ftl.check_invariants()


def test_device_full_of_valid_data_raises():
    ftl = small_ftl(op=0.0, ppb=4, bpp=4)
    with pytest.raises(CapacityError):
        for lpn in range(ftl.exported_pages):
            ftl.write(lpn)
        # all pages valid, GC can free nothing, next write must fail
        ftl.write(0) if ftl.free_block_count else None
        for lpn in range(ftl.exported_pages):
            ftl.write(lpn)


def test_erases_are_counted_by_wear_tracker():
    ftl = small_ftl()
    for i in range(1000):
        ftl.write(i % 4)
    assert ftl.wear.total_erases == ftl.gc_runs


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["w", "t"]), st.integers(0, 15)),
        min_size=1,
        max_size=300,
    )
)
def test_ftl_invariants_under_random_ops(ops):
    """Property: l2p/p2l stay mutually consistent under any op sequence."""
    ftl = small_ftl()
    mapped = set()
    for kind, lpn in ops:
        if kind == "w":
            ftl.write(lpn)
            mapped.add(lpn)
        else:
            ftl.trim(lpn)
            mapped.discard(lpn)
    ftl.check_invariants()
    for lpn in range(16):
        assert ftl.is_mapped(lpn) == (lpn in mapped)
