"""Tests for the deduplicating cache (CacheDedup / D-LRU)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig, ContentModel, DedupWriteThrough
from repro.errors import ConfigError
from repro.harness import simulate_policy
from repro.raid import RAIDArray, RaidLevel
from repro.traces import zipf_workload


def make_policy(cache_pages=32, dup_ratio=0.5, seed=0):
    raid = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=4,
                     pages_per_disk=1 << 14)
    cfg = CacheConfig(cache_pages=cache_pages, ways=16, seed=seed)
    return DedupWriteThrough(cfg, raid, content=ContentModel(dup_ratio, seed))


class TestContentModel:
    def test_dup_ratio_zero_always_fresh(self):
        m = ContentModel(dup_ratio=0.0, seed=1)
        ids = {m.content_for_write(lba) for lba in range(100)}
        assert len(ids) == 100

    def test_dup_ratio_one_repeats(self):
        m = ContentModel(dup_ratio=1.0, seed=1)
        m.content_for_write(0)  # seed content
        ids = {m.content_for_write(lba) for lba in range(1, 100)}
        assert len(ids) < 100

    def test_read_returns_last_written_content(self):
        m = ContentModel(dup_ratio=0.0, seed=1)
        cid = m.content_for_write(7)
        assert m.content_for_read(7) == cid

    def test_cold_read_gets_stable_content(self):
        m = ContentModel(seed=1)
        assert m.content_for_read(9) == m.content_for_read(9)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ContentModel(dup_ratio=1.5)


class TestDLru:
    def test_duplicate_write_costs_no_data_write(self):
        p = make_policy(dup_ratio=1.0)
        p.write(0)
        before = p.stats.ssd_writes
        # every further write repeats cached content with dup_ratio=1
        for lba in range(1, 30):
            p.write(lba)
        assert p.stats.ssd_writes - before < 29
        assert p.dedup_write_hits > 0
        p.check_invariants()

    def test_unique_content_always_written(self):
        p = make_policy(dup_ratio=0.0)
        for lba in range(10):
            p.write(lba)
        assert p.stats.ssd_writes == 10
        assert p.dedup_write_hits == 0

    def test_read_hit_through_source_index(self):
        p = make_policy(dup_ratio=0.0)
        p.write(5)
        out = p.read(5)
        assert out.hit
        assert p.stats.read_hits == 1

    def test_identical_fills_share_one_page(self):
        p = make_policy(dup_ratio=1.0)
        p.write(0)          # content X cached
        p.read(100)         # cold read: fresh content, new page
        before = p.stats.ssd_writes
        p.read(100)         # now a hit
        assert p.stats.ssd_writes == before

    def test_store_capacity_respected(self):
        p = make_policy(cache_pages=8, dup_ratio=0.0)
        for lba in range(50):
            p.write(lba)
        assert len(p._store) <= 8
        p.check_invariants()

    def test_writes_still_reach_raid(self):
        p = make_policy(dup_ratio=1.0)
        for lba in range(20):
            p.write(lba)
        assert p.raid.counters.data_writes == 20  # write-through intact
        assert not p.raid.stale_stripes

    def test_runner_integration(self):
        trace = zipf_workload(2000, 300, alpha=1.0, read_ratio=0.3, seed=5)
        r = simulate_policy("dedup-wt", trace, cache_pages=128, seed=1)
        assert r.stats.accesses == 2000

    @settings(max_examples=20, deadline=None)
    @given(
        ops=st.lists(st.tuples(st.booleans(), st.integers(0, 40)),
                     max_size=150),
        dup=st.sampled_from([0.0, 0.4, 0.9]),
    )
    def test_property_index_consistency(self, ops, dup):
        p = make_policy(cache_pages=16, dup_ratio=dup, seed=3)
        for is_read, lba in ops:
            p.access(lba, is_read)
        p.check_invariants()

    def test_higher_dup_ratio_fewer_cache_writes(self):
        trace = zipf_workload(4000, 500, alpha=0.9, read_ratio=0.2, seed=7)
        writes = []
        for dup in (0.0, 0.5, 0.9):
            raid = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=4,
                             pages_per_disk=1 << 14)
            p = DedupWriteThrough(
                CacheConfig(cache_pages=256, ways=16, seed=1),
                raid,
                content=ContentModel(dup, seed=1),
            )
            p.process_trace(trace)
            writes.append(p.stats.ssd_writes)
        assert writes[0] > writes[1] > writes[2]
