"""Fixture-tree builder shared by the whole-program analyzer tests."""

import textwrap


def write_fixture_tree(root, files):
    """Materialise a ``repro`` package tree for the whole-program analyzer.

    ``files`` maps paths relative to the fixture ``repro`` root (e.g.
    ``"sim/api.py"``) to dedented source.  Every directory gets an
    ``__init__.py`` so the tree parses as a real package.  Returns the
    package root path.
    """
    pkg = root / "repro"
    pkg.mkdir(parents=True, exist_ok=True)
    for rel, source in files.items():
        path = pkg / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    for directory in [pkg, *[d for d in pkg.rglob("*") if d.is_dir()]]:
        init = directory / "__init__.py"
        if not init.exists():
            init.write_text("", encoding="utf-8")
    return pkg
