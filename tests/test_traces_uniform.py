"""Tests for the uniform binary trace format (Section IV-A1)."""

import io

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.traces import (
    load_trace,
    parse_spc,
    save_trace,
    uniform_workload,
    write_spc,
)
from repro.traces.uniform import FORMAT_VERSION, convert


def test_roundtrip(tmp_path):
    tr = uniform_workload(500, 1000, read_ratio=0.4, seed=3, name="u")
    path = save_trace(tr, tmp_path / "u.trace.npz")
    loaded = load_trace(path)
    assert loaded.name == "u"
    assert loaded.page_size == tr.page_size
    assert np.array_equal(loaded.records, tr.records)


def test_stats_survive_roundtrip(tmp_path):
    tr = uniform_workload(300, 400, read_ratio=0.7, seed=4)
    path = save_trace(tr, tmp_path / "t")
    assert load_trace(path).stats() == tr.stats()


def test_load_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.npz"
    bad.write_bytes(b"not a zip archive")
    with pytest.raises(TraceFormatError):
        load_trace(bad)


def test_load_rejects_wrong_version(tmp_path):
    tr = uniform_workload(10, 10, seed=1)
    path = save_trace(tr, tmp_path / "v.npz")
    # rewrite with a bogus version
    import json

    with np.load(path) as data:
        records = data["records"]
    np.savez(path, records=records,
             meta=np.frombuffer(json.dumps({"version": 99}).encode(), np.uint8))
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_convert_spc(tmp_path):
    tr = uniform_workload(50, 100, seed=2, name="conv")
    spc = tmp_path / "conv.spc"
    write_spc(tr, spc)
    out = convert(spc)
    loaded = load_trace(out)
    assert len(loaded) == 50
    assert loaded.name == "conv"


def test_convert_rejects_unknown_suffix(tmp_path):
    f = tmp_path / "x.bin"
    f.write_bytes(b"")
    with pytest.raises(TraceFormatError):
        convert(f)


def test_version_constant():
    assert FORMAT_VERSION == 1
