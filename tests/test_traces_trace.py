"""Tests for the Trace container and its statistics."""

import numpy as np
import pytest

from repro.errors import ConfigError, TraceFormatError
from repro.traces import IO_DTYPE, IORequest, Trace, empty_records


def make_trace(rows):
    """rows: list of (time, lba, npages, is_read)."""
    rec = empty_records(len(rows))
    for i, (t, lba, n, r) in enumerate(rows):
        rec[i] = (t, lba, n, r)
    return Trace(rec, name="t")


def test_len_and_getitem():
    tr = make_trace([(0.0, 10, 1, True), (1.0, 20, 2, False)])
    assert len(tr) == 2
    req = tr[1]
    assert req == IORequest(time=1.0, lba=20, npages=2, is_read=False)
    assert req.is_write


def test_iteration_yields_requests_in_time_order():
    tr = make_trace([(2.0, 1, 1, True), (0.5, 2, 1, False)])
    times = [r.time for r in tr]
    assert times == sorted(times)


def test_rejects_wrong_dtype():
    with pytest.raises(TraceFormatError):
        Trace(np.zeros(3, dtype=np.float64))


def test_rejects_zero_length_requests():
    rec = empty_records(1)
    rec[0] = (0.0, 0, 0, True)
    with pytest.raises(TraceFormatError):
        Trace(rec)


def test_max_page_accounts_for_request_length():
    tr = make_trace([(0.0, 10, 4, True)])
    assert tr.max_page == 14


def test_duration():
    tr = make_trace([(1.0, 0, 1, True), (5.5, 0, 1, True)])
    assert tr.duration == pytest.approx(4.5)


def test_page_accesses_expands_multi_page_requests():
    tr = make_trace([(0.0, 10, 3, True), (1.0, 100, 1, False)])
    pages, is_read = tr.page_accesses()
    assert pages.tolist() == [10, 11, 12, 100]
    assert is_read.tolist() == [True, True, True, False]


def test_stats_unique_and_request_counts():
    tr = make_trace(
        [
            (0.0, 10, 2, True),   # reads pages 10, 11
            (1.0, 11, 1, False),  # writes page 11
            (2.0, 10, 1, True),   # rereads page 10
        ]
    )
    s = tr.stats()
    assert s.unique_pages == 2
    assert s.unique_read_pages == 2
    assert s.unique_write_pages == 1
    assert s.read_requests == 3  # page accesses: 2 + 1
    assert s.write_requests == 1
    assert s.read_ratio == pytest.approx(0.75)


def test_head_truncates():
    tr = make_trace([(0.0, 1, 1, True), (1.0, 2, 1, True), (2.0, 3, 1, True)])
    assert len(tr.head(2)) == 2


def test_scaled_time():
    tr = make_trace([(0.0, 1, 1, True), (4.0, 2, 1, True)])
    assert tr.scaled_time(0.5).duration == pytest.approx(2.0)
    with pytest.raises(ConfigError):
        tr.scaled_time(0.0)


def test_records_view_is_readonly():
    tr = make_trace([(0.0, 1, 1, True)])
    with pytest.raises(ValueError):
        tr.records["lba"][0] = 99


def test_empty_trace():
    tr = Trace(empty_records(0))
    assert len(tr) == 0
    assert tr.duration == 0.0
    assert tr.max_page == 0
    s = tr.stats()
    assert s.unique_pages == 0 and s.read_ratio == 0.0
