"""Tests for geometry, wear tracking, and the SSD device wrapper."""

import numpy as np
import pytest

from repro.errors import ConfigError, FlashError, WornOutError
from repro.flash import (
    MLC_ENDURANCE,
    SSD,
    FlashGeometry,
    LifetimeEstimate,
    SSDLatency,
    WearTracker,
    relative_lifetime,
)
from repro.units import GiB, MiB


class TestGeometry:
    def test_capacity_math(self):
        g = FlashGeometry(
            channels=2,
            dies_per_channel=2,
            planes_per_die=2,
            blocks_per_plane=4,
            pages_per_block=64,
            page_size=4096,
        )
        assert g.planes == 8
        assert g.total_blocks == 32
        assert g.total_pages == 2048
        assert g.capacity_bytes == 8 * MiB

    def test_for_capacity_covers_request(self):
        g = FlashGeometry.for_capacity(1 * GiB)
        assert g.capacity_bytes >= 1 * GiB
        assert g.capacity_bytes < 2 * GiB

    def test_block_plane_interleave(self):
        g = FlashGeometry(channels=4, dies_per_channel=1, planes_per_die=1,
                          blocks_per_plane=2, pages_per_block=4)
        planes = [g.plane_of_block(b) for b in range(4)]
        assert planes == [0, 1, 2, 3]

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            FlashGeometry(channels=0)


class TestWear:
    def test_erase_counting_and_wearout(self):
        g = FlashGeometry(channels=1, dies_per_channel=1, planes_per_die=1,
                          blocks_per_plane=2, pages_per_block=4)
        w = WearTracker(g, endurance=3)
        for _ in range(3):
            w.record_erase(0)
        assert w.erases(0) == 3
        with pytest.raises(WornOutError):
            w.record_erase(0)

    def test_imbalance_and_life(self):
        g = FlashGeometry(channels=1, dies_per_channel=1, planes_per_die=1,
                          blocks_per_plane=4, pages_per_block=4)
        w = WearTracker(g, endurance=100)
        w.record_erase(0)
        w.record_erase(0)
        w.record_erase(1)
        assert w.max_erases == 2
        assert w.life_consumed == pytest.approx(0.02)
        assert w.wear_imbalance > 1.0

    def test_least_worn(self):
        g = FlashGeometry(channels=1, dies_per_channel=1, planes_per_die=1,
                          blocks_per_plane=4, pages_per_block=4)
        w = WearTracker(g)
        w.record_erase(0)
        assert w.least_worn(np.array([0, 1])) == 1


class TestLifetime:
    def test_lifetime_formula(self):
        est = LifetimeEstimate(
            capacity_bytes=100 * GiB,
            endurance=10_000,
            write_amplification=2.0,
            host_writes_per_day=500 * GiB,
        )
        expected_days = (100 * GiB * 10_000) / (500 * GiB * 2.0)
        assert est.lifetime_days == pytest.approx(expected_days)
        assert est.lifetime_years == pytest.approx(expected_days / 365.25)

    def test_zero_writes_is_infinite(self):
        est = LifetimeEstimate(GiB, 1000, 1.0, 0.0)
        assert est.lifetime_days == float("inf")

    def test_relative_lifetime(self):
        # KDD writing 5.1x less than LeavO lives 5.1x longer
        assert relative_lifetime(100.0, 510.0) == pytest.approx(5.1)
        assert relative_lifetime(0.0, 1.0) == float("inf")


class TestSSD:
    def test_capacity_and_rw(self):
        ssd = SSD(capacity_bytes=8 * MiB, store_data=True)
        ssd.write(0, b"hello")
        assert ssd.read(0) == b"hello"
        assert ssd.is_mapped(0)
        ssd.trim(0)
        assert not ssd.is_mapped(0)

    def test_payload_requires_store_data(self):
        ssd = SSD(capacity_bytes=8 * MiB)
        with pytest.raises(ConfigError):
            ssd.write(0, b"x")

    def test_payload_too_large(self):
        ssd = SSD(capacity_bytes=8 * MiB, store_data=True)
        with pytest.raises(FlashError):
            ssd.write(0, b"x" * 5000)

    def test_geometry_xor_capacity_exclusive(self):
        with pytest.raises(ConfigError):
            SSD(geometry=FlashGeometry(), capacity_bytes=GiB)

    def test_latency_batches_exploit_channels(self):
        lat = SSDLatency(page_read=100e-6, command_overhead=0.0)
        ssd = SSD(
            geometry=FlashGeometry(channels=8, blocks_per_plane=4, pages_per_block=8),
            latency=lat,
        )
        assert ssd.read_time(1) == pytest.approx(100e-6)
        assert ssd.read_time(8) == pytest.approx(100e-6)
        assert ssd.read_time(9) == pytest.approx(200e-6)

    def test_write_traffic_counters(self):
        ssd = SSD(capacity_bytes=8 * MiB)
        for lpn in range(10):
            ssd.write(lpn)
        assert ssd.host_write_pages == 10
        assert ssd.host_write_bytes == 10 * 4096
        assert ssd.write_amplification >= 1.0

    def test_lifetime_projection_uses_waf(self):
        ssd = SSD(capacity_bytes=8 * MiB)
        ssd.write(0)
        est = ssd.lifetime(host_writes_per_day=1 * MiB)
        assert est.endurance == MLC_ENDURANCE
        assert est.lifetime_days > 0
