"""Unit tests for the benchmark harness (no timed simulation runs)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.harness.bench import (
    BENCH_FIGURES,
    _cell,
    _checksum,
    _FIG_GRIDS,
    _geomean,
    compare_reports,
    load_report,
    run_benches,
    write_report,
)


def _report(fig="fig4", speedup=3.0, checksum="sha256:aa", engine=None):
    out = {
        "figure": fig,
        "kind": "trace",
        "cells": 4,
        "ops": 1000,
        "scalar": {"wall_s": 1.0, "ops_per_s": 1000},
        "vectorized": {"wall_s": 1.0 / speedup, "ops_per_s": 1000 * speedup},
        "speedup": speedup,
        "geomean_speedup": speedup,
        "row_checksum": checksum,
    }
    if engine is not None:
        out["engine"] = engine
    return out


def test_compare_clean():
    assert compare_reports(_report(), _report()) == []


def test_compare_checksum_drift_is_flagged():
    problems = compare_reports(_report(), _report(checksum="sha256:bb"))
    assert len(problems) == 1
    assert "rows changed" in problems[0]


def test_compare_speedup_regression_threshold():
    # 20% drop from 3.0x is 2.4x: 2.5x passes, 2.3x fails
    assert compare_reports(_report(speedup=3.0), _report(speedup=2.5)) == []
    problems = compare_reports(_report(speedup=3.0), _report(speedup=2.3))
    assert len(problems) == 1
    assert "regressed" in problems[0]


def test_compare_speedup_improvement_is_clean():
    assert compare_reports(_report(speedup=3.0), _report(speedup=9.0)) == []


def test_compare_engine_checksum():
    old = _report(engine={"row_checksum": "sha256:e1"})
    new = _report(engine={"row_checksum": "sha256:e2"})
    assert any("engine-bench rows changed" in p
               for p in compare_reports(old, new))
    assert compare_reports(old, old) == []


def test_report_roundtrip(tmp_path):
    report = _report()
    path = write_report(report, tmp_path)
    assert path.name == "BENCH_fig4.json"
    assert load_report("fig4", tmp_path) == report
    assert load_report("fig9", tmp_path) is None
    # file is valid, newline-terminated JSON (committable baseline)
    text = path.read_text()
    assert text.endswith("\n")
    assert json.loads(text) == report


def test_load_report_corrupt_baseline_is_config_error(tmp_path):
    path = tmp_path / "BENCH_fig4.json"
    path.write_text("{not json")
    with pytest.raises(ConfigError, match=r"unreadable bench baseline .*BENCH_fig4\.json"):
        load_report("fig4", tmp_path)


def test_run_benches_rejects_unknown_figure(tmp_path):
    with pytest.raises(ConfigError, match="unknown bench figures"):
        run_benches(["fig99"], out_dir=tmp_path)


def test_run_benches_check_requires_baselines_up_front(tmp_path):
    # No baseline committed: --check must refuse before benching,
    # naming every missing file.
    with pytest.raises(ConfigError, match=r"missing: .*BENCH_fig4\.json"):
        run_benches(["fig4"], out_dir=tmp_path, check_only=True)


def test_kdd_variant_cells_map_to_kdd():
    cell = _cell("kdd-25", "Fin1", 128)
    assert cell.policy == "kdd"
    assert cell.label == "kdd-25"
    assert dict(cell.config)["mean_compression"] == 0.25
    assert dict(cell.config)["seed"] == 0


def test_grids_cover_every_trace_figure():
    for fig in BENCH_FIGURES:
        if fig not in _FIG_GRIDS:  # engine-only / robustness benches
            continue
        cells = _FIG_GRIDS[fig](0.004)
        assert cells, fig
        # every cell resolves to a registered policy with a pinned seed
        for cell in cells:
            assert "seed" in dict(cell.config)


def test_checksum_is_order_sensitive_and_stable():
    rows = [{"policy": "wt", "hit_ratio": 0.5}, {"policy": "kdd"}]
    assert _checksum(rows) == _checksum([dict(r) for r in rows])
    assert _checksum(rows) != _checksum(rows[::-1])


def test_compare_serve_report_is_checksum_gated_only():
    # no "speedup" key: the ratio gate must not apply, only row drift
    old = {"figure": "serve", "kind": "serve", "row_checksum": "sha256:aa"}
    assert compare_reports(old, dict(old)) == []
    drift = dict(old, row_checksum="sha256:bb")
    assert any("rows changed" in p for p in compare_reports(old, drift))


def test_geomean():
    assert _geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert _geomean([5.0]) == pytest.approx(5.0)


def test_cli_bench_subcommand_wiring(tmp_path, capsys, monkeypatch):
    from repro.harness import bench, cli

    def fake_bench_figure(fig, scale=bench.BENCH_SCALE):
        return _report(fig=fig, speedup=2.0, checksum="sha256:cc")

    monkeypatch.setattr(bench, "bench_figure", fake_bench_figure)
    rc = cli.main(["bench", "fig4", "--out-dir", str(tmp_path)])
    assert rc == 0
    assert load_report("fig4", tmp_path)["speedup"] == 2.0
    # --check against the baseline just written: clean
    assert cli.main(["bench", "fig4", "--out-dir", str(tmp_path),
                     "--check"]) == 0
    # --check with a missing baseline is a configuration error naming
    # the absent file (exit 2, no bare traceback)
    rc = cli.main(["bench", "fig5", "--out-dir", str(tmp_path), "--check"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "kdd-repro bench:" in err
    assert f"{tmp_path}/BENCH_fig5.json" in err
    # --check --artifact-dir writes the fresh report without touching
    # the baseline directory
    artifacts = tmp_path / "out"
    assert cli.main(["bench", "fig4", "--out-dir", str(tmp_path), "--check",
                     "--artifact-dir", str(artifacts)]) == 0
    assert load_report("fig4", artifacts) is not None
    assert load_report("fig5", tmp_path) is None
