"""Tier-1 gate: the library itself passes its own static analysis.

This is the executable form of the determinism invariants in DESIGN.md:
if a change reintroduces wall-clock reads, unseeded randomness, builtin
raises, hash-ordered iteration, etc. into ``src/repro``, this test —
and the CI lint job — fail.
"""

import json
from pathlib import Path

from repro.devtools.lint import lint_paths
from repro.devtools.lint.cli import main as lint_main

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def test_src_repro_exists():
    assert SRC.is_dir(), f"expected library sources at {SRC}"


def test_src_repro_is_lint_clean():
    findings = lint_paths([SRC])
    rendered = "\n".join(f.render() for f in findings)
    assert not findings, f"kdd-lint findings in src/repro:\n{rendered}"


def test_cli_on_src_repro_exits_zero(capsys):
    assert lint_main([str(SRC), "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["findings"] == [] and doc["counts"] == {}


def test_json_output_byte_identical_across_runs(capsys):
    lint_main([str(SRC), "--format", "json"])
    first = capsys.readouterr().out
    lint_main([str(SRC), "--format", "json"])
    second = capsys.readouterr().out
    assert first == second


def test_kdd_repro_lint_subcommand_delegates(capsys):
    from repro.harness.cli import main as repro_main

    assert repro_main(["lint", str(SRC)]) == 0
    assert "clean" in capsys.readouterr().out
    assert repro_main(["lint", "--list-rules"]) == 0
    assert "RPR001" in capsys.readouterr().out


def test_file_order_does_not_affect_output():
    forward = lint_paths([SRC])
    pieces = sorted(SRC.rglob("*.py"), reverse=True)
    backward = lint_paths(pieces)
    assert forward == backward
