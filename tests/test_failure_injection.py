"""Randomised failure injection: crash at arbitrary points, then recover.

The recovery unit tests cut at convenient boundaries; these tests cut
the run at *hypothesis-chosen* points in the access stream and assert
the full recovery contract each time:

* power failure at any point -> the rebuilt primary map equals the live
  one (KDD persistence protocol is complete at every instant);
* SSD loss at any point -> resync restores fault tolerance and no
  acknowledged write is lost (payload check);
* disk loss at any point after parity repair -> all data reconstructs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig
from repro.core import (
    KDD,
    KDDDataPath,
    ContentWorkload,
    recover_from_power_failure,
    recover_from_ssd_failure,
    verify_recovery,
)
from repro.raid import RAIDArray, RaidLevel, resync_stale_parity


def counting_system(cache_pages=48):
    raid = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=4,
                     pages_per_disk=4096)
    kdd = KDD(
        CacheConfig(cache_pages=cache_pages, ways=16, group_pages=16,
                    dirty_threshold=0.5, low_watermark=0.25),
        raid,
    )
    return kdd, raid


ops_strategy = st.lists(
    st.tuples(st.booleans(), st.integers(0, 80)), min_size=2, max_size=200
)


@settings(max_examples=20, deadline=None)
@given(ops=ops_strategy, data=st.data())
def test_power_failure_at_any_point(ops, data):
    kdd, _ = counting_system()
    cut = data.draw(st.integers(0, len(ops)))
    for is_read, lba in ops[:cut]:
        kdd.access(lba, is_read)
    state = recover_from_power_failure(kdd)
    verify_recovery(kdd, state)
    # and the run can continue after recovery without corruption
    for is_read, lba in ops[cut:]:
        kdd.access(lba, is_read)
    kdd.check_invariants()


@settings(max_examples=20, deadline=None)
@given(ops=ops_strategy, data=st.data())
def test_ssd_loss_at_any_point_restores_redundancy(ops, data):
    kdd, raid = counting_system()
    cut = data.draw(st.integers(0, len(ops)))
    for is_read, lba in ops[:cut]:
        kdd.access(lba, is_read)
    recover_from_ssd_failure(kdd)
    assert not raid.stale_stripes
    # the array must now survive any single member loss
    raid.fail_disk(data.draw(st.integers(0, 4)))


@settings(max_examples=10, deadline=None)
@given(
    writes=st.lists(st.integers(0, 30), min_size=3, max_size=60),
    data=st.data(),
)
def test_payload_survives_ssd_loss_then_disk_loss(writes, data):
    """Strongest RPO=0 statement: write real bytes through the full KDD
    data path, lose the SSD mid-run, resync, lose a disk — every
    acknowledged write must still be reconstructable from the array."""
    raid = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=4,
                     pages_per_disk=1024, page_size=128, store_data=True)
    path = KDDDataPath(raid=raid, cache_pages=24, ways=8, page_size=128,
                       dirty_limit=0.5)
    content = ContentWorkload(31, change_fraction=0.15, page_size=128,
                              seed=13)
    cut = data.draw(st.integers(1, len(writes)))
    latest: dict[int, bytes] = {}
    for lba in writes[:cut]:
        payload = content.next_version(lba)
        path.write(lba, payload)
        latest[lba] = payload
    # SSD dies: all cache state (data, deltas, staging) is gone.
    resync_stale_parity(raid)
    assert not raid.stale_stripes
    # Now a disk dies too.
    victim = data.draw(st.integers(0, 4))
    raid.fail_disk(victim)
    for lba, payload in latest.items():
        assert bytes(raid.read_data(lba)) == payload, lba


@settings(max_examples=10, deadline=None)
@given(ops=ops_strategy)
def test_double_power_failure(ops):
    """Recovery is idempotent: crash, recover, crash again immediately."""
    kdd, _ = counting_system()
    for is_read, lba in ops:
        kdd.access(lba, is_read)
    first = recover_from_power_failure(kdd)
    second = recover_from_power_failure(kdd)
    assert {p.lba_raid: (p.state, p.dez_lpn) for p in first.pages.values()} == {
        p.lba_raid: (p.state, p.dez_lpn) for p in second.pages.values()
    }
    verify_recovery(kdd, second)


@settings(max_examples=15, deadline=None)
@given(ops=ops_strategy, data=st.data())
def test_recovery_after_forced_cleaning(ops, data):
    """Tiny pinned caches exercise forced cleaning; recovery must still
    be exact right after those paths run."""
    kdd, _ = counting_system(cache_pages=8)
    for is_read, lba in ops:
        kdd.access(lba, is_read)
    state = recover_from_power_failure(kdd)
    verify_recovery(kdd, state)


@settings(max_examples=15, deadline=None)
@given(
    writes=st.lists(st.integers(0, 30), min_size=3, max_size=60),
    data=st.data(),
)
def test_media_error_cut_reconstructs_or_degrades_exactly_when_stale(
        writes, data):
    """A latent sector error (URE) struck at an arbitrary point in a KDD
    run either reconstructs the exact acknowledged payload, or raises
    DegradedError precisely when the victim's stripe has stale parity —
    never a wrong payload, never a spurious failure.  After the cleaner
    repairs parity, the same read must succeed with the right bytes."""
    from repro.errors import DegradedError

    raid = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=4,
                     pages_per_disk=1024, page_size=128, store_data=True)
    path = KDDDataPath(raid=raid, cache_pages=24, ways=8, page_size=128,
                       dirty_limit=0.5)
    content = ContentWorkload(31, change_fraction=0.15, page_size=128,
                              seed=13)
    cut = data.draw(st.integers(1, len(writes)))
    latest: dict[int, bytes] = {}
    for lba in writes[:cut]:
        payload = content.next_version(lba)
        path.write(lba, payload)
        latest[lba] = payload
    # The URE strikes the array copy of one acknowledged write.
    victim_lba = data.draw(st.sampled_from(sorted(latest)))
    loc = raid.layout.locate(victim_lba)
    raid.mark_media_error(loc.disk, loc.disk_page)
    stale = raid.layout.stripe_of(victim_lba) in raid.stale_stripes
    if stale:
        # Inside the vulnerability window: the read must fail loudly.
        with pytest.raises(DegradedError):
            raid.read_data(victim_lba)
    else:
        assert bytes(raid.read_data(victim_lba)) == latest[victim_lba]
    # The cleaner (here: a full resync) closes the window; every
    # acknowledged payload is reconstructable again.
    resync_stale_parity(raid)
    assert bytes(raid.read_data(victim_lba)) == latest[victim_lba]
    raid.repair_page(loc.disk, loc.disk_page)
    assert not raid.media_errors
