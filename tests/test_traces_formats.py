"""Tests for the SPC and MSR trace file parsers."""

import io

import pytest

from repro.errors import TraceFormatError
from repro.traces import concat_spc, parse_msr, parse_spc, write_spc
from repro.traces.spc import ASU_REGION_PAGES


def test_parse_spc_basic():
    text = "0,0,4096,r,0.000\n0,8,8192,w,0.500\n"
    tr = parse_spc(io.StringIO(text), name="x")
    assert len(tr) == 2
    assert tr[0].is_read and tr[0].lba == 0 and tr[0].npages == 1
    # sector 8 = byte 4096 -> page 1; 8192 bytes -> 2 pages
    assert tr[1].is_write and tr[1].lba == 1 and tr[1].npages == 2


def test_parse_spc_linearises_asus():
    text = "0,0,4096,r,0.0\n1,0,4096,r,0.1\n"
    tr = parse_spc(io.StringIO(text))
    assert tr[1].lba == ASU_REGION_PAGES


def test_parse_spc_unaligned_spans_pages():
    # sector 7 = byte 3584; 4096 bytes end at 7679 -> pages 0..1
    tr = parse_spc(io.StringIO("0,7,4096,r,0.0\n"))
    assert tr[0].lba == 0 and tr[0].npages == 2


def test_parse_spc_skips_comments_blank_and_zero_size():
    text = "# header\n\n0,0,0,r,0.0\n0,0,4096,w,0.0\n"
    tr = parse_spc(io.StringIO(text))
    assert len(tr) == 1 and tr[0].is_write


def test_parse_spc_rejects_bad_opcode_and_fields():
    with pytest.raises(TraceFormatError):
        parse_spc(io.StringIO("0,0,4096,x,0.0\n"))
    with pytest.raises(TraceFormatError):
        parse_spc(io.StringIO("0,0,4096\n"))
    with pytest.raises(TraceFormatError):
        parse_spc(io.StringIO("a,b,c,d,e\n"))


def test_spc_roundtrip(tmp_path):
    text = "0,0,4096,r,0.000000\n0,16,4096,w,1.500000\n"
    tr = parse_spc(io.StringIO(text))
    out = tmp_path / "t.spc"
    write_spc(tr, out)
    tr2 = parse_spc(out)
    assert len(tr2) == 2
    assert [(r.lba, r.npages, r.is_read) for r in tr] == [
        (r.lba, r.npages, r.is_read) for r in tr2
    ]


def test_concat_spc_sorts_by_time():
    a = parse_spc(io.StringIO("0,0,4096,r,5.0\n"), name="a")
    b = parse_spc(io.StringIO("0,8,4096,w,1.0\n"), name="b")
    merged = concat_spc([a, b])
    assert merged[0].is_write and merged[1].is_read


def test_concat_spc_empty_rejected():
    with pytest.raises(TraceFormatError):
        concat_spc([])


def test_parse_msr_basic():
    # 100ns ticks; second record 1 ms later; offsets in bytes
    text = (
        "128166372003061629,hm,0,Read,0,4096,100\n"
        "128166372003071629,hm,0,Write,8192,4096,100\n"
    )
    tr = parse_msr(io.StringIO(text), name="hm0")
    assert len(tr) == 2
    assert tr[0].time == pytest.approx(0.0)
    assert tr[1].time == pytest.approx(1e-3)
    assert tr[0].lba == 0 and tr[1].lba == 2
    assert tr[0].is_read and tr[1].is_write


def test_parse_msr_filters_disk_number():
    text = (
        "128166372003061629,hm,0,Read,0,4096,100\n"
        "128166372003061629,hm,1,Read,4096,4096,100\n"
    )
    tr = parse_msr(io.StringIO(text), disk_number=0)
    assert len(tr) == 1


def test_parse_msr_rejects_bad_type():
    with pytest.raises(TraceFormatError):
        parse_msr(io.StringIO("1,hm,0,Flush,0,4096,1\n"))


def test_parse_msr_unaligned_size_spans_pages():
    text = "128166372003061629,hm,0,Read,4000,4096,100\n"
    tr = parse_msr(io.StringIO(text))
    assert tr[0].lba == 0 and tr[0].npages == 2
