"""Tests for the calibrated Table I workload stand-ins."""

import pytest

from repro.errors import ConfigError
from repro.traces import (
    ALL_WORKLOADS,
    READ_DOMINANT,
    TABLE1_SPECS,
    WRITE_DOMINANT,
    make_workload,
    workload_spec,
)

#: Table I, as printed in the paper (thousands).
TABLE1 = {
    "Fin1": dict(total=993, read=331, write=966, rreq=1339, wreq=5628, ratio=0.19),
    "Fin2": dict(total=405, read=271, write=212, rreq=3562, wreq=917, ratio=0.80),
    "Hm0": dict(total=609, read=488, write=428, rreq=2880, wreq=5992, ratio=0.33),
    "Web0": dict(total=1913, read=1884, write=182, rreq=4575, wreq=3186, ratio=0.59),
}


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_specs_match_table1(name):
    spec = TABLE1_SPECS[name]
    t = TABLE1[name]
    assert spec.unique_pages == t["total"] * 1000
    assert spec.unique_read_pages == t["read"] * 1000
    assert spec.unique_write_pages == t["write"] * 1000
    assert spec.read_requests == t["rreq"] * 1000
    assert spec.write_requests == t["wreq"] * 1000


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_read_ratio_matches_table1(name):
    spec = TABLE1_SPECS[name]
    ratio = spec.read_requests / (spec.read_requests + spec.write_requests)
    assert ratio == pytest.approx(TABLE1[name]["ratio"], abs=0.01)


def test_dominance_groups():
    assert set(WRITE_DOMINANT) == {"Fin1", "Hm0"}
    assert set(READ_DOMINANT) == {"Fin2", "Web0"}


def test_unknown_workload_rejected():
    with pytest.raises(ConfigError):
        workload_spec("NotATrace")


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_scaled_generation_preserves_shape(name):
    tr = make_workload(name, scale=0.002)
    s = tr.stats()
    spec = workload_spec(name, scale=0.002)
    assert s.unique_pages == spec.unique_pages
    assert s.read_requests == spec.read_requests
    assert s.read_ratio == pytest.approx(TABLE1[name]["ratio"], abs=0.02)


def test_web0_write_locality_exceeds_read_locality():
    """The property the paper uses to explain Fig. 7 (Web0, small caches)."""
    spec = TABLE1_SPECS["Web0"]
    accesses_per_read_page = spec.read_requests / spec.unique_read_pages
    accesses_per_write_page = spec.write_requests / spec.unique_write_pages
    assert accesses_per_write_page > 4 * accesses_per_read_page
    assert spec.write_alpha > spec.read_alpha


def test_make_workload_deterministic_per_name():
    import numpy as np

    a = make_workload("Fin2", scale=0.001)
    b = make_workload("Fin2", scale=0.001)
    assert np.array_equal(a.records, b.records)
