"""Tests for the mirrored write-back cache (SRC / cache-optimised RAID)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig, MirroredWriteBack
from repro.errors import CacheError, ConfigError
from repro.harness import simulate_policy
from repro.nvram import PageState
from repro.raid import RAIDArray, RaidLevel
from repro.traces import zipf_workload


def make_mwb(cache_pages=64, **kw):
    raid = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=4,
                     pages_per_disk=1 << 14)
    kw.setdefault("ways", 16)
    return MirroredWriteBack(CacheConfig(cache_pages=cache_pages, **kw), raid), raid


class TestWriteBackSemantics:
    def test_write_hit_avoids_raid(self):
        p, raid = make_mwb()
        p.write(0)
        out = p.write(0)
        assert out.hit and not out.fg_disk_ops
        assert raid.counters.data_writes == 0

    def test_dirty_pages_are_mirrored(self):
        p, _ = make_mwb()
        p.write(0)
        assert p.dirty_pages == 1
        assert p.mirrored_pages == 1
        p.check_invariants()

    def test_mirror_doubles_dirty_write_traffic(self):
        p, _ = make_mwb()
        p.write(0)  # primary + mirror
        assert p.stats.data_writes == 2
        p.write(0)  # rewrite both copies
        assert p.stats.data_writes == 4

    def test_clean_pages_not_mirrored(self):
        p, _ = make_mwb()
        p.read(0)
        assert p.mirrored_pages == 0
        assert p.stats.fill_writes == 1

    def test_flash_budget_counts_mirrors(self):
        p, _ = make_mwb(cache_pages=8, ways=8, group_pages=1)
        for lba in range(4):
            p.write(lba * 16)
        # 4 dirty pages need 8 flash pages: the budget is exactly full
        assert p.flash_used == 8
        p.write(5 * 16)  # forces a flush to stay within two devices
        assert p.flash_used <= 8
        p.check_invariants()

    def test_finish_flushes_dirty_to_raid(self):
        p, raid = make_mwb()
        for lba in range(5):
            p.write(lba)
        p.finish()
        assert p.dirty_pages == 0
        assert raid.counters.data_writes >= 5
        p.check_invariants()


class TestSsdFailure:
    def test_dirty_pages_survive_one_ssd_loss(self):
        """The design goal: no data loss on a single cache-device failure."""
        p, raid = make_mwb()
        for lba in range(6):
            p.write(lba)
        report = p.fail_ssd(0)
        assert report["dirty_flushed"] == 6
        assert raid.counters.data_writes >= 6  # everything reached RAID
        assert p.dirty_pages == 0

    def test_second_failure_rejected(self):
        p, _ = make_mwb()
        p.fail_ssd(0)
        with pytest.raises(CacheError):
            p.fail_ssd(1)

    def test_bad_device_id(self):
        p, _ = make_mwb()
        with pytest.raises(ConfigError):
            p.fail_ssd(2)


class TestCostComparisonWithKdd:
    def test_mwb_doubles_writes_kdd_does_not(self):
        """Same reliability (RPO=0 under one SSD loss), different bills:
        the mirrored cache pays 2x flash writes per dirty page; KDD pays
        a RAID member write but writes the SSD once (delta only)."""
        trace = zipf_workload(5000, 800, alpha=1.0, read_ratio=0.2, seed=5)
        mwb = simulate_policy("mwb", trace, cache_pages=512, seed=1)
        kdd = simulate_policy("kdd", trace, cache_pages=512, seed=1)
        assert kdd.ssd_write_pages < mwb.ssd_write_pages
        # and the mirrored cache needs half its flash for copies
        assert mwb.stats.data_writes > trace.stats().write_requests

    def test_mwb_latency_beats_kdd(self):
        """What the mirrored cache buys: write-back latency (no RAID on
        the write path) — the axis where it wins."""
        from repro.sim import FioConfig, TimedSystem, run_closed_loop
        from repro.harness import build_policy
        from repro.cache import CacheConfig

        def mean_ms(policy):
            raid = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=16,
                             pages_per_disk=1 << 16)
            p = build_policy(policy, CacheConfig(cache_pages=8192, seed=1), raid)
            rep = run_closed_loop(
                TimedSystem(p),
                FioConfig(total_requests=600, working_set_pages=4000,
                          read_rate=0.0, nthreads=4, seed=2),
            )
            return rep.latency.mean

        assert mean_ms("mwb") < mean_ms("kdd")


@settings(max_examples=20, deadline=None)
@given(
    ops=st.lists(st.tuples(st.booleans(), st.integers(0, 60)), max_size=200)
)
def test_property_mirror_accounting(ops):
    p, _ = make_mwb(cache_pages=24, ways=8, group_pages=8)
    for is_read, lba in ops:
        p.access(lba, is_read)
    p.check_invariants()
    assert p.flash_used <= p.config.cache_pages
    p.finish()
    p.check_invariants()
    assert p.mirrored_pages == 0
