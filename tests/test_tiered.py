"""Tests for the two-tier RAID-1/RAID-5 hierarchy (HotMirroring/AutoRAID)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.raid import RAIDArray, RaidLevel, TieredRaid
from repro.traces import zipf_workload


def make_tiered(mirror_pages=16, promote_on_write=True):
    cold = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=4,
                     pages_per_disk=1 << 12)
    return TieredRaid(cold, mirror_pages=mirror_pages,
                      promote_on_write=promote_on_write)


class TestPlacement:
    def test_first_write_promotes(self):
        t = make_tiered()
        t.write(5)
        assert t.is_hot(5)
        assert t.counters.promotions == 1

    def test_hot_write_costs_two_member_writes(self):
        t = make_tiered()
        t.write(5)  # promotion
        before = t.member_ios
        t.write(5)  # pure hot write
        writes = t.member_ios - before
        assert writes == 2  # both mirrors, no parity

    def test_cold_write_without_promotion(self):
        t = make_tiered(promote_on_write=False)
        ops = t.write(5)
        assert not t.is_hot(5)
        assert len(ops) == 4  # plain RAID-5 rmw

    def test_reads_follow_tier(self):
        t = make_tiered()
        t.write(5)
        ops = t.read(5)
        assert len(ops) == 1  # one mirror copy
        ops_cold = t.read(100)
        assert len(ops_cold) == 1
        assert not t.is_hot(100)

    def test_out_of_range(self):
        t = make_tiered()
        with pytest.raises(ConfigError):
            t.write(t.cold.capacity_pages)


class TestMigration:
    def test_lru_demotion_when_full(self):
        t = make_tiered(mirror_pages=2)
        t.write(1)
        t.write(2)
        t.write(3)  # demotes 1 (least recently written)
        assert not t.is_hot(1)
        assert t.is_hot(2) and t.is_hot(3)
        assert t.counters.demotions == 1
        t.check_invariants()

    def test_rewrite_refreshes_recency(self):
        t = make_tiered(mirror_pages=2)
        t.write(1)
        t.write(2)
        t.write(1)  # 1 becomes MRU
        t.write(3)  # demotes 2
        assert t.is_hot(1) and not t.is_hot(2)

    def test_demotion_pays_the_small_write(self):
        t = make_tiered(mirror_pages=1)
        t.write(1)
        before = t.cold.counters.total
        t.write(2)  # demote 1: mirror read + RAID-5 rmw
        assert t.cold.counters.total - before >= 4

    def test_demote_all(self):
        t = make_tiered(mirror_pages=8)
        for lba in range(5):
            t.write(lba)
        t.demote_all()
        assert t.hot_pages == 0
        t.check_invariants()


class TestEconomics:
    def test_hot_working_set_beats_plain_raid5(self):
        """When the write working set fits the mirror, most writes cost
        2 I/Os instead of 4 — HotMirroring's whole premise."""
        trace = zipf_workload(4000, 2000, alpha=1.2, read_ratio=0.0, seed=9)
        tiered = make_tiered(mirror_pages=256)
        plain = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=4,
                          pages_per_disk=1 << 12)
        for req in trace:
            lba = req.lba % tiered.cold.capacity_pages
            tiered.write(lba)
            plain.write(lba)
        assert tiered.member_ios < plain.counters.total

    def test_thrashing_working_set_pays_migration(self):
        """A uniformly-random write stream larger than the mirror makes
        the tier thrash: promotions+demotions on nearly every write."""
        trace = zipf_workload(1000, 4000, alpha=0.0, read_ratio=0.0, seed=9)
        t = make_tiered(mirror_pages=16)
        for req in trace:
            t.write(req.lba % t.cold.capacity_pages)
        assert t.counters.migrations > 900


@settings(max_examples=20, deadline=None)
@given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 60)),
                    max_size=200))
def test_property_slot_conservation(ops):
    t = make_tiered(mirror_pages=8)
    for is_read, lba in ops:
        if is_read:
            t.read(lba)
        else:
            t.write(lba)
    t.check_invariants()
    assert t.hot_pages <= 8
