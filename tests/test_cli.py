"""Tests for the kdd-repro CLI (run / simulate / trace file loading)."""

import pytest

from repro.harness.cli import main as cli_main
from repro.traces import uniform_workload, write_spc


class TestSimulateCommand:
    def test_simulate_named_workload(self, capsys):
        rc = cli_main([
            "simulate", "kdd", "--workload", "Fin2", "--scale", "0.002",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "kdd" in out and "hit_ratio" in out

    def test_simulate_all_policies(self, capsys):
        for policy in ("nossd", "wa", "wt", "wb", "leavo", "kdd",
                       "dedup-wt", "mwb", "owb", "jwb"):
            rc = cli_main([
                "simulate", policy, "--workload", "Fin2", "--scale", "0.001",
            ])
            assert rc == 0, policy

    def test_simulate_explicit_cache_pages(self, capsys):
        rc = cli_main([
            "simulate", "wt", "--workload", "Fin2", "--scale", "0.001",
            "--cache-pages", "128",
        ])
        assert rc == 0
        assert "128" in capsys.readouterr().out

    def test_simulate_with_admission(self, capsys):
        rc = cli_main([
            "simulate", "wt", "--workload", "Fin2", "--scale", "0.001",
            "--admission", "larc",
        ])
        assert rc == 0

    def test_simulate_spc_file(self, tmp_path, capsys):
        tr = uniform_workload(200, 300, read_ratio=0.5, seed=1)
        spc = tmp_path / "mini.spc"
        write_spc(tr, spc)
        rc = cli_main(["simulate", "wt", "--workload", str(spc)])
        assert rc == 0

    def test_simulate_unknown_workload(self):
        with pytest.raises(SystemExit):
            cli_main(["simulate", "wt", "--workload", "nope.bin"])

    def test_simulate_compression_flag(self, capsys):
        rc = cli_main([
            "simulate", "kdd", "--workload", "Fin2", "--scale", "0.001",
            "--compression", "0.12",
        ])
        assert rc == 0


class TestRunCommand:
    def test_run_multiple_figures(self, capsys):
        rc = cli_main(["run", "table1", "--scale", "0.001"])
        assert rc == 0

    def test_seed_flag_accepted(self, capsys):
        rc = cli_main(["run", "table1", "--scale", "0.001", "--seed", "7"])
        assert rc == 0


class TestServeCommand:
    _SMALL = [
        "serve", "--tenants", "2", "--cache-pages", "256",
        "--universe-pages", "256", "--base-iops", "10", "--duration", "120",
        "--realloc-period", "500", "--min-fraction", "0.05",
    ]

    def test_serve_compares_static_and_dynamic(self, capsys):
        rc = cli_main(self._SMALL)
        assert rc == 0
        out = capsys.readouterr().out
        assert "static" in out and "dynamic" in out
        assert "fairness_jain" in out

    def test_serve_per_tenant_tables(self, capsys):
        rc = cli_main(self._SMALL + ["--per-tenant"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-tenant" in out
        assert "quota_pages" in out

    def test_serve_report_out(self, tmp_path, capsys):
        import json

        report = tmp_path / "serve.json"
        rc = cli_main(self._SMALL + ["--report-out", str(report)])
        assert rc == 0
        rows = json.loads(report.read_text())
        assert {row["plan"] for row in rows} == {"static", "dynamic"}
        assert all(row["per_tenant"] for row in rows)

    def test_serve_rejects_unknown_plan(self):
        with pytest.raises(SystemExit):
            cli_main(["serve", "--plans", "static,bogus"])
