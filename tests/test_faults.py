"""The deterministic fault-injection layer (repro.faults).

Covers the schedule's per-device RNG streams, retry/backoff timing,
fault-aware device servers (including SSD channel tie-breaking),
degraded RAID reads and media repair, the fault-aware timing simulator,
the scrubber, rebuild-under-load, the sweep-engine ``faults`` cell kind
(byte-identical across job counts), and the CLI driver.
"""

import json

import pytest

from repro.cache import CacheConfig
from repro.disk.hdd import HDDParams
from repro.errors import ConfigError, DegradedError, FaultError, MediaError
from repro.faults import (
    DeviceFaultStream,
    FaultConfig,
    FaultCounters,
    FaultKind,
    FaultSchedule,
    FaultyTimedSystem,
    RETRY_POLICIES,
    RetryPolicy,
    Scrubber,
    demo_event_log,
    rebuild_under_load,
    retry_policy,
)
from repro.harness.cli import main as cli_main
from repro.harness.faultsweep import faults_cell
from repro.harness.runner import build_policy
from repro.harness.sweep import SweepEngine, trace_desc
from repro.raid import RAIDArray, RaidLevel, rebuild_disk
from repro.sim.devices import DiskServer, SSDServer
from repro.traces import uniform_workload


def make_array(**kw):
    kw.setdefault("ndisks", 5)
    kw.setdefault("chunk_pages", 4)
    kw.setdefault("pages_per_disk", 4096)
    return RAIDArray(RaidLevel.RAID5, **kw)


def make_timed(policy="wt", fault_config=None, cache_pages=64, **kw):
    raid = make_array()
    p = build_policy(policy, CacheConfig(cache_pages=cache_pages, ways=16,
                                         group_pages=16), raid)
    return raid, FaultyTimedSystem(p, fault_config or FaultConfig(), **kw)


# ---------------------------------------------------------------- schedule


class TestFaultSchedule:
    def test_same_seed_same_draws(self):
        cfg = FaultConfig(seed=42, ure_rate=0.1, timeout_rate=0.1)
        a = DeviceFaultStream("disk0", cfg)
        b = DeviceFaultStream("disk0", cfg)
        draws = [(a.draw(True), b.draw(True)) for _ in range(200)]
        assert all(x == y for x, y in draws)

    def test_streams_are_independent_per_device(self):
        """Draining one device's stream never shifts another's."""
        cfg = FaultConfig(seed=7, ure_rate=0.2, timeout_rate=0.1)
        solo = [DeviceFaultStream("disk1", cfg).draw(True) for _ in range(1)]
        sched = FaultSchedule(cfg)
        for _ in range(500):  # hammer disk0 first
            sched.stream("disk0").draw(True)
        assert sched.stream("disk1").draw(True) == solo[0]

    def test_streams_memoised(self):
        sched = FaultSchedule(FaultConfig(seed=1))
        assert sched.stream("disk0") is sched.stream("disk0")

    def test_draw_rate_one_is_certain(self):
        stream = DeviceFaultStream("d", FaultConfig(seed=0, ure_rate=1.0))
        assert stream.draw(True) is FaultKind.URE
        assert stream.draw(False) is None  # UREs only strike reads

    def test_ssd_stream_never_draws_media_faults(self):
        stream = DeviceFaultStream("ssd", FaultConfig(seed=0, ure_rate=1.0),
                                   media_faults=False)
        assert all(stream.draw(True) is None for _ in range(50))

    def test_scheduled_device_failure(self):
        cfg = FaultConfig(seed=0, device_failures=(("disk2", 0.5),))
        stream = DeviceFaultStream("disk2", cfg)
        assert not stream.failed_by(0.49)
        assert stream.failed_by(0.5)
        assert DeviceFaultStream("disk1", cfg).fail_at is None

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            FaultConfig(ure_rate=1.5)
        with pytest.raises(ConfigError):
            FaultConfig(timeout_s=-1.0)
        with pytest.raises(ConfigError):
            FaultConfig(device_failures=(("disk0", -0.1),))
        with pytest.raises(ConfigError):
            FaultSchedule(FaultConfig(), ure_rate=0.5)

    def test_error_taxonomy(self):
        from repro.errors import DeviceTimeoutError, ReproError

        assert issubclass(MediaError, FaultError)
        assert issubclass(DeviceTimeoutError, FaultError)
        assert issubclass(FaultError, ReproError)

    def test_counters_row(self):
        c = FaultCounters(ures=2, retries=5)
        row = c.row()
        assert row["ures"] == 2 and row["retries"] == 5


# ---------------------------------------------------------------- retry


class TestRetryPolicy:
    def test_exponential_backoff(self):
        p = RetryPolicy(max_retries=3, base_backoff=0.001, multiplier=2.0)
        assert [p.backoff(i) for i in range(3)] == [0.001, 0.002, 0.004]
        assert p.total_backoff(3) == pytest.approx(0.007)

    def test_named_policies(self):
        assert retry_policy("none").max_retries == 0
        assert retry_policy("fixed").multiplier == 1.0
        assert set(RETRY_POLICIES) == {"none", "fixed", "backoff"}

    def test_unknown_policy_raises(self):
        with pytest.raises(ConfigError):
            retry_policy("exponential-ish")


# ---------------------------------------------------------------- devices


class TestDeviceFaults:
    def test_timeout_stall_without_retry(self):
        cfg = FaultConfig(seed=0, timeout_rate=1.0, timeout_s=0.01)
        plain = DiskServer(HDDParams())
        faulty = DiskServer(HDDParams(), faults=DeviceFaultStream("d", cfg),
                            retry=retry_policy("none"))
        base = plain.serve(0, 1, True, 0.0)
        w = faulty.serve(0, 1, True, 0.0)
        assert w.fault is FaultKind.TIMEOUT
        assert w.retries == 0
        assert w.finish == pytest.approx(base.finish + 0.01)

    def test_backoff_retries_add_latency(self):
        cfg = FaultConfig(seed=0, timeout_rate=1.0, timeout_s=0.01)
        plain = DiskServer(HDDParams())
        faulty = DiskServer(HDDParams(), faults=DeviceFaultStream("d", cfg),
                            retry=retry_policy("backoff"))
        base = plain.serve(0, 1, True, 0.0)
        w = faulty.serve(0, 1, True, 0.0)
        # 3 retried stalls + their backoffs + the final unretried stall
        assert w.fault is FaultKind.TIMEOUT and w.retries == 3
        assert w.fault_latency == pytest.approx(4 * 0.01 + 0.007)
        assert w.finish == pytest.approx(base.finish + w.fault_latency)

    def test_retry_can_clear_a_transient(self):
        cfg = FaultConfig(seed=3, timeout_rate=0.5, timeout_s=0.01)
        server = DiskServer(HDDParams(), faults=DeviceFaultStream("d", cfg),
                            retry=retry_policy("backoff"))
        windows = [server.serve(i, 1, True, 0.0) for i in range(40)]
        cleared = [w for w in windows if w.ok and w.retries > 0]
        assert cleared, "some timeout should clear within the retry budget"

    def test_no_faults_means_clean_windows(self):
        server = DiskServer(HDDParams())
        w = server.serve(0, 1, True, 0.0)
        assert w.ok and w.retries == 0 and w.fault_latency == 0.0


class TestSsdChannelDeterminism:
    def test_equal_busy_ties_break_by_lowest_index(self):
        ssd = SSDServer(channels=8)
        assert ssd._assign_channels(3) == [0, 1, 2]

    def test_assignment_round_robins_over_rank(self):
        ssd = SSDServer(channels=4)
        assert ssd._assign_channels(6) == [0, 1, 2, 3, 0, 1]

    def test_uneven_busy_prefers_idle_then_index(self):
        ssd = SSDServer(channels=4)
        ssd.channel_busy = [0.5, 0.1, 0.5, 0.1]
        assert ssd._assign_channels(4) == [1, 3, 0, 2]

    def test_serve_records_assignment(self):
        ssd = SSDServer(channels=8)
        ssd.serve_read(3, 0.0)
        assert ssd.last_assignment == [0, 1, 2]

    def test_assignment_is_reproducible(self):
        def run():
            ssd = SSDServer(channels=4)
            out = []
            for i in range(12):
                ssd.serve_read(1 + i % 3, i * 0.001)
                out.append(tuple(ssd.last_assignment))
            return out

        assert run() == run()


# ---------------------------------------------------------------- raid layer


class TestArrayMediaErrors:
    def test_fresh_stripe_reconstructs_with_payload(self):
        raid = make_array(pages_per_disk=64, store_data=True, page_size=32)
        for lpage in range(raid.capacity_pages):
            raid.write(lpage, data=[bytes([lpage % 251]) * 32])
        loc = raid.layout.locate(5)
        raid.mark_media_error(loc.disk, loc.disk_page)
        assert not raid.page_readable(loc.disk, loc.disk_page)
        ops = raid.read(5)
        assert all(op.disk != loc.disk or op.disk_page != loc.disk_page
                   for op in ops)
        assert bytes(raid.read_data(5)) == bytes([5]) * 32

    def test_stale_stripe_read_degrades_until_parity_repair(self):
        raid = make_array(pages_per_disk=64, store_data=True, page_size=32)
        for lpage in range(raid.capacity_pages):
            raid.write(lpage, data=[bytes([lpage % 251]) * 32])
        raid.write_without_parity_update(0, data=b"\xab" * 32)
        victim = raid.layout.locate(1)  # sibling page, same stripe
        raid.mark_media_error(victim.disk, victim.disk_page)
        with pytest.raises(DegradedError):
            raid.read(1)
        with pytest.raises(DegradedError):
            raid.read_data(1)
        raid.parity_update(0, cached_pages=list(raid.layout.stripe_pages(0)))
        assert bytes(raid.read_data(1)) == bytes([1]) * 32
        assert bytes(raid.read_data(0)) == b"\xab" * 32

    def test_repair_page_clears_the_error(self):
        raid = make_array(pages_per_disk=64, store_data=True, page_size=32)
        for lpage in range(raid.capacity_pages):
            raid.write(lpage, data=[bytes([lpage % 251]) * 32])
        loc = raid.layout.locate(3)
        raid.mark_media_error(loc.disk, loc.disk_page)
        ops = raid.repair_page(loc.disk, loc.disk_page)
        writes = [op for op in ops if not op.is_read]
        assert len(writes) == 1 and writes[0].disk == loc.disk
        assert raid.page_readable(loc.disk, loc.disk_page)
        assert raid.repair_page(loc.disk, loc.disk_page) == []  # idempotent

    def test_double_failure_in_stripe_is_fatal_on_raid5(self):
        raid = make_array(pages_per_disk=64)
        loc_a = raid.layout.locate(0)
        loc_b = raid.layout.locate(raid.layout.chunk_pages)  # next chunk, same stripe
        raid.mark_media_error(loc_a.disk, loc_a.disk_page)
        raid.mark_media_error(loc_b.disk, loc_b.disk_page)
        with pytest.raises(DegradedError):
            raid.read(0)

    def test_parity_unit_media_error_rebuilds_from_data(self):
        raid = make_array(pages_per_disk=64, store_data=True, page_size=32)
        for lpage in range(raid.capacity_pages):
            raid.write(lpage, data=[bytes([lpage % 251]) * 32])
        pdisk = raid.layout.parity_disk(0)
        raid.mark_media_error(pdisk, 0)
        raid.repair_page(pdisk, 0)
        assert raid.verify_stripe(0)

    def test_failed_disk_clears_its_media_errors(self):
        raid = make_array(pages_per_disk=64)
        raid.mark_media_error(0, 7)
        raid.mark_media_error(1, 9)
        raid.fail_disk(0)
        assert (0, 7) not in raid.media_errors
        assert (1, 9) in raid.media_errors

    def test_raid0_cannot_reconstruct(self):
        raid = RAIDArray(RaidLevel.RAID0, ndisks=4, chunk_pages=4,
                         pages_per_disk=64)
        raid.mark_media_error(0, 0)
        with pytest.raises(DegradedError):
            raid.read(0)

    def test_raid1_reads_surviving_mirror(self):
        raid = RAIDArray(RaidLevel.RAID1, ndisks=2, chunk_pages=4,
                         pages_per_disk=64, store_data=True, page_size=32)
        raid.write(0, data=[b"\x11" * 32])
        raid.mark_media_error(0, 0)
        assert bytes(raid.read_data(0)) == b"\x11" * 32
        raid.mark_media_error(1, 0)
        with pytest.raises(DegradedError):
            raid.read(0)


# ---------------------------------------------------------------- timed system


class TestFaultyTimedSystem:
    def test_run_is_deterministic(self):
        def run():
            raid, system = make_timed(
                "kdd", FaultConfig(seed=7, ure_rate=0.02, timeout_rate=0.02))
            for req in uniform_workload(300, 4096, seed=3):
                system.submit_request(req)
            return (system.fault_row(), system.schedule.event_rows(),
                    system.recorder.summary().mean_ms)

        assert run() == run()

    def test_ure_reconstructs_and_repairs(self):
        raid, system = make_timed("wt", FaultConfig(seed=0, ure_rate=1.0))
        system.submit(0, 1, True, 0.0)
        assert system.counters.ures == 1
        assert system.counters.reconstructions == 1
        assert system.counters.repairs == 1
        assert not raid.media_errors  # background repair cleared it
        kinds = [e.kind for e in system.schedule.events]
        assert kinds == ["ure", "media_repair"]

    def test_stale_stripe_escalates_then_repairs_on_demand(self):
        raid, system = make_timed("wt", FaultConfig(seed=0, ure_rate=1.0))
        raid.write_without_parity_update(0)
        system.submit(1, 1, True, 0.0)  # sibling of the stale write
        assert system.counters.stale_escalations == 1
        assert 0 not in raid.stale_stripes
        kinds = [e.kind for e in system.schedule.events]
        assert kinds == ["ure", "stale_escalation", "parity_repair",
                        "media_repair"]

    def test_strict_mode_propagates_degraded_error(self):
        raid, system = make_timed("wt", FaultConfig(seed=0, ure_rate=1.0),
                                  repair_stale_on_demand=False)
        raid.write_without_parity_update(0)
        with pytest.raises(DegradedError):
            system.submit(1, 1, True, 0.0)

    def test_timeout_without_retry_escalates_to_peers(self):
        raid, system = make_timed(
            "wt", FaultConfig(seed=0, timeout_rate=1.0), retry="none")
        system.submit(0, 1, True, 0.0)
        assert system.counters.timeouts >= 1
        assert system.counters.reconstructions >= 1

    def test_retries_absorb_transients(self):
        _, system = make_timed(
            "wt", FaultConfig(seed=5, timeout_rate=0.3), retry="backoff")
        for req in uniform_workload(100, 4096, seed=1):
            system.submit_request(req)
        assert system.counters.retries > 0

    def test_scheduled_device_failure_strikes_once(self):
        raid, system = make_timed(
            "kdd", FaultConfig(seed=1, device_failures=(("disk2", 0.05),)))
        for req in uniform_workload(200, 4096, seed=2):
            system.submit_request(req)
        assert 2 in raid.failed_disks
        assert system.counters.device_failures == 1
        fails = [e for e in system.schedule.events if e.kind == "device_fail"]
        assert len(fails) == 1 and fails[0].device == "disk2"

    def test_kdd_suspends_delayed_parity_while_degraded(self):
        """Once a member is lost, further write hits must not widen the
        vulnerability window: no new stale stripes may appear."""
        raid, system = make_timed(
            "kdd", FaultConfig(seed=1, device_failures=(("disk1", 0.0),)))
        for req in uniform_workload(200, 4096, read_ratio=0.2, seed=4):
            system.submit_request(req)
        assert 1 in raid.failed_disks
        assert not raid.stale_stripes

    def test_ssd_timeouts_are_waited_out(self):
        _, system = make_timed(
            "wt", FaultConfig(seed=2, timeout_rate=0.5), retry="none")
        for req in uniform_workload(60, 4096, read_ratio=1.0, seed=6):
            system.submit_request(req)
        ssd_events = [e for e in system.schedule.events if e.device == "ssd"]
        assert ssd_events, "cache commands should time out at rate 0.5"


# ---------------------------------------------------------------- scrubber


class TestScrubber:
    def _loaded_array(self):
        raid = make_array(pages_per_disk=16, chunk_pages=2, store_data=True,
                          page_size=16)
        for lpage in range(raid.capacity_pages):
            raid.write(lpage, data=[bytes([lpage % 251]) * 16])
        return raid

    def test_full_pass_repairs_everything(self):
        raid = self._loaded_array()
        raid.write_without_parity_update(0, data=b"\xab" * 16)
        loc = raid.layout.locate(1)
        raid.mark_media_error(loc.disk, loc.disk_page)
        report = Scrubber(raid).run()
        assert report.parity_repaired == 1
        assert report.media_repaired == 1
        assert report.parity_mismatches == 0
        assert not raid.stale_stripes and not raid.media_errors
        assert bytes(raid.read_data(0)) == b"\xab" * 16
        assert bytes(raid.read_data(1)) == bytes([1]) * 16

    def test_incremental_step_wraps(self):
        raid = self._loaded_array()
        scrub = Scrubber(raid)
        total = scrub.total_stripes
        report, _ops = scrub.step(3)
        assert report.stripes_scanned == 3 and scrub.cursor == 3
        scrub.step(total)
        assert scrub.cursor == 3  # wrapped all the way around

    def test_double_failure_is_counted_unrepairable(self):
        raid = self._loaded_array()
        loc_a = raid.layout.locate(0)
        loc_b = raid.layout.locate(raid.layout.chunk_pages)  # next chunk, same stripe
        raid.mark_media_error(loc_a.disk, loc_a.disk_page)
        raid.mark_media_error(loc_b.disk, loc_b.disk_page)
        report = Scrubber(raid).run()
        assert report.unrepairable > 0
        assert raid.media_errors  # left marked, not silently dropped

    def test_verify_reads_are_charged(self):
        raid = self._loaded_array()
        report = Scrubber(raid).run()
        assert report.member_reads > 0 and report.member_writes == 0
        quiet = Scrubber(raid, charge_verify_reads=False).run()
        assert quiet.member_reads == 0

    def test_unbounded_array_rejected(self):
        raid = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=4,
                         pages_per_disk=None)
        with pytest.raises(ConfigError):
            Scrubber(raid)


# ---------------------------------------------------------------- rebuild


class TestRebuildReport:
    def test_count_only_by_default(self):
        raid = make_array(pages_per_disk=64)
        raid.fail_disk(0)
        report = rebuild_disk(raid, 0)
        assert report.pages_rebuilt == 64
        assert report.member_reads > 0 and report.member_writes == 64
        assert report.disk_ops == []  # not retained

    def test_keep_ops_retains_the_op_list(self):
        raid = make_array(pages_per_disk=64)
        raid.fail_disk(0)
        report = rebuild_disk(raid, 0, keep_ops=True)
        assert len(report.disk_ops) == report.member_ios
        assert {op.disk for op in report.disk_ops if not op.is_read} == {0}

    def test_rebuild_under_load_completes(self):
        raid = make_array(pages_per_disk=256)
        policy = build_policy("wt", CacheConfig(cache_pages=64, ways=16,
                                                group_pages=16), raid)
        system = FaultyTimedSystem(policy, FaultConfig(seed=3))
        reqs = list(uniform_workload(50, 1024, seed=4))
        raid.fail_disk(1)
        report, done = rebuild_under_load(system, 1, iter(reqs),
                                          batch_stripes=2)
        assert report.pages_rebuilt == 256
        assert 1 not in raid.failed_disks
        assert done > 0.0


# ---------------------------------------------------------------- sweep + CLI


class TestFaultSweep:
    CELLS = dict(cache_pages=128, ure_rate=0.01, timeout_rate=0.01)

    def _cells(self):
        trace = trace_desc("uniform", n_requests=200, universe_pages=2048,
                           read_ratio=0.6, seed=0, name="t")
        return [
            faults_cell("kdd", trace, 128, ure_rate=r, timeout_rate=0.01,
                        retry=p)
            for r in (0.0, 0.01) for p in ("none", "backoff")
        ]

    def test_rows_byte_identical_across_jobs(self):
        cells = self._cells()
        serial = SweepEngine(jobs=1).run(cells)
        parallel = SweepEngine(jobs=2).run(cells)
        assert json.dumps(serial.rows, sort_keys=True) == \
            json.dumps(parallel.rows, sort_keys=True)

    def test_rows_survive_the_result_cache(self, tmp_path):
        cells = self._cells()[:2]
        fresh = SweepEngine(jobs=1, cache=tmp_path / "c").run(cells)
        cached = SweepEngine(jobs=1, cache=tmp_path / "c").run(cells)
        assert cached.stats.cached == 2
        assert fresh.rows == cached.rows

    def test_unknown_retry_rejected_at_cell_construction(self):
        trace = trace_desc("uniform", n_requests=10, universe_pages=256,
                           read_ratio=0.5, seed=0, name="t")
        with pytest.raises(ConfigError):
            faults_cell("kdd", trace, 64, retry="nope")

    def test_cli_faults_smoke(self, tmp_path, capsys):
        events_path = tmp_path / "events.json"
        rc = cli_main([
            "faults", "--rates", "0,0.01", "--timeout-rates", "0.01",
            "--retries", "none,backoff", "--requests", "100",
            "--universe-pages", "1024", "--cache-pages", "64",
            "--events-out", str(events_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ures" in out and "reconstructions" in out
        events = json.loads(events_path.read_text())
        kinds = [e["kind"] for e in events]
        assert kinds == ["ure", "reconstruction", "media_repair",
                         "stale_parity", "ure", "degraded_error",
                         "parity_repair", "reconstruction", "media_repair"]

    def test_cli_faults_op_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "ops.jsonl"
        rc = cli_main([
            "faults", "--rates", "0.01", "--timeout-rates", "0.01",
            "--retries", "backoff", "--requests", "100",
            "--universe-pages", "1024", "--cache-pages", "64",
            "--op-trace", str(trace_path),
        ])
        assert rc == 0
        assert "op records" in capsys.readouterr().out
        lines = trace_path.read_text().splitlines()
        assert lines
        ops = [json.loads(line) for line in lines]
        assert [op["op"] for op in ops] == list(range(len(ops)))
        assert all(op["queue_delay"] >= 0.0 for op in ops)
        assert {"submitted", "start", "finish", "device", "kind",
                "fault"} <= set(ops[0])
        # derandomized: a second export is byte-identical
        again = tmp_path / "ops2.jsonl"
        assert cli_main(["faults", "--rates", "0.01", "--timeout-rates",
                         "0.01", "--retries", "backoff", "--requests", "100",
                         "--universe-pages", "1024", "--cache-pages", "64",
                         "--op-trace", str(again)]) == 0
        capsys.readouterr()
        assert again.read_text() == trace_path.read_text()

    def test_cli_rejects_unknown_retry(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["faults", "--retries", "bogus"])


class TestDemoEventLog:
    def test_demo_is_deterministic(self):
        assert demo_event_log() == demo_event_log()

    def test_demo_tells_the_vulnerability_window_story(self):
        events = demo_event_log()
        kinds = [e["kind"] for e in events]
        # act 1: fresh-stripe URE survives
        assert kinds[:3] == ["ure", "reconstruction", "media_repair"]
        # act 2: the same fault inside the window degrades
        assert "degraded_error" in kinds
        window = kinds.index("degraded_error")
        assert kinds[window - 2:window] == ["stale_parity", "ure"]
        # act 3: parity repair closes the window
        assert kinds[window + 1:] == ["parity_repair", "reconstruction",
                                      "media_repair"]
