"""Tests for the HDD service-time model."""

import pytest

from repro.disk import HDD, HDDParams
from repro.errors import ConfigError
from repro.units import MILLISECOND


def test_rotation_time_from_rpm():
    p = HDDParams(rpm=7200)
    assert p.rotation_time == pytest.approx(60.0 / 7200)
    assert p.avg_rotational_latency == pytest.approx(60.0 / 7200 / 2)


def test_params_validation():
    with pytest.raises(ConfigError):
        HDDParams(rpm=0)
    with pytest.raises(ConfigError):
        HDDParams(seek_min=5 * MILLISECOND, seek_avg=1 * MILLISECOND)


def test_sequential_access_skips_seek_and_rotation():
    d = HDD()
    t1 = d.service_time(1000, 8, is_read=True)  # seek from parked head
    t2 = d.service_time(1008, 8, is_read=True)  # head is already there
    assert t2 < t1
    assert t2 == pytest.approx(8 * 4096 / d.params.transfer_rate)


def test_random_access_pays_seek_plus_rotation():
    d = HDD()
    d.service_time(0, 1, is_read=True)
    far = d.capacity_pages // 2
    t = d.service_time(far, 1, is_read=False)
    assert t > d.params.avg_rotational_latency
    assert t > 5 * MILLISECOND


def test_longer_seeks_cost_more():
    d = HDD()
    d.service_time(0, 1, True)
    t_near = d.service_time(1000, 1, True)
    d2 = HDD()
    d2.service_time(0, 1, True)
    t_far = d2.service_time(d2.capacity_pages - 1, 1, True)
    assert t_far > t_near


def test_counters_and_busy_time():
    d = HDD()
    d.service_time(0, 2, is_read=True)
    d.service_time(100, 3, is_read=False)
    assert d.reads == 2 and d.writes == 3
    assert d.busy_time > 0


def test_zero_length_rejected():
    with pytest.raises(ConfigError):
        HDD().service_time(0, 0, True)
