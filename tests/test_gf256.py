"""Property-based tests for GF(2^8) arithmetic (RAID-6 substrate)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RaidError
from repro.raid import gf_add, gf_div, gf_inv, gf_mul, gf_pow, generator_power

elem = st.integers(0, 255)
nonzero = st.integers(1, 255)


@given(elem, elem)
def test_add_is_xor_and_self_inverse(a, b):
    assert gf_add(a, b) == a ^ b
    assert gf_add(gf_add(a, b), b) == a


@given(elem)
def test_mul_identity_and_zero(a):
    assert gf_mul(a, 1) == a
    assert gf_mul(a, 0) == 0


@given(elem, nonzero, nonzero)
def test_mul_associative_scalar(a, b, c):
    assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))


@given(nonzero, nonzero)
def test_mul_commutative(a, b):
    assert gf_mul(a, b) == gf_mul(b, a)


@given(elem, elem, nonzero)
def test_distributive(a, b, c):
    assert gf_mul(a ^ b, c) == gf_mul(a, c) ^ gf_mul(b, c)


@given(nonzero)
def test_inverse(a):
    assert gf_mul(a, gf_inv(a)) == 1


@given(elem, nonzero)
def test_div_undoes_mul(a, b):
    assert gf_div(gf_mul(a, b), b) == a


def test_div_by_zero_raises():
    with pytest.raises(RaidError):
        gf_div(1, 0)


def test_scalar_out_of_field_rejected():
    with pytest.raises(RaidError):
        gf_mul(1, 256)


@given(st.integers(0, 254))
def test_generator_powers_cycle(i):
    assert generator_power(i) == gf_pow(2, i)
    assert generator_power(i) != 0


def test_generator_powers_distinct():
    powers = {generator_power(i) for i in range(255)}
    assert len(powers) == 255  # 2 generates the full multiplicative group


@given(st.binary(min_size=1, max_size=64), nonzero)
def test_vectorised_mul_matches_scalar(data, b):
    arr = np.frombuffer(data, dtype=np.uint8)
    out = gf_mul(arr, b)
    assert isinstance(out, np.ndarray)
    for x, y in zip(arr.tolist(), out.tolist()):
        assert gf_mul(x, b) == y


@given(st.binary(min_size=4, max_size=32))
def test_vectorised_mul_by_zero_and_one(data):
    arr = np.frombuffer(data, dtype=np.uint8)
    assert np.all(gf_mul(arr, 0) == 0)
    assert np.array_equal(gf_mul(arr, 1), arr)
