"""Effect/write-set analysis (RPR201-RPR206).

Each contract family is proven on a fixture tree where the rule fires
on a seeded violation and stays silent on the conforming twin; the
real tree is then held to all of them at once (effects-clean, with a
mutation test showing the epoch-bump contract actually bites on the
production ``CacheSets``).
"""

from pathlib import Path

from repro.devtools.analyze import Project
from repro.devtools.analyze.effects import (
    EffectAnalysis,
    check_effects,
    effects_report,
)

SRC_REPRO = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Mini twin of repro.contracts: the analyzer resolves the decorator
#: by its project id, so the fixture tree needs a real definition.
MINI_CONTRACTS = """\
    def mutates_membership(func):
        func.__mutates_membership__ = True
        return func
"""


def codes(findings):
    return sorted(f.code for f in findings)


class TestMirrorCoherence:
    def test_undecorated_membership_write_is_rpr201(self, analyze_tree):
        project = analyze_tree({
            "contracts.py": MINI_CONTRACTS,
            "cache/sets.py": """\
                class CacheSets:
                    def __init__(self):
                        self._index = {}
                        self.mutations = 0

                    def alloc(self, lba):
                        self._index[lba] = lba
            """,
        })
        findings = check_effects(project)
        assert codes(findings) == ["RPR201"]
        assert "'_index'" in findings[0].message
        assert "alloc()" in findings[0].message

    def test_mutator_call_on_membership_attr_is_rpr201(self, analyze_tree):
        project = analyze_tree({
            "contracts.py": MINI_CONTRACTS,
            "cache/sets.py": """\
                class CacheSets:
                    def __init__(self):
                        self._index = {}
                        self.mutations = 0

                    def remove(self, lba):
                        self._index.pop(lba, None)
            """,
        })
        assert codes(check_effects(project)) == ["RPR201"]

    def test_epoch_write_outside_choke_point_is_rpr201(self, analyze_tree):
        project = analyze_tree({
            "contracts.py": MINI_CONTRACTS,
            "cache/sets.py": """\
                class CacheSets:
                    def __init__(self):
                        self.mutations = 0

                    def poke(self):
                        self.mutations += 1
            """,
        })
        findings = check_effects(project)
        assert codes(findings) == ["RPR201"]
        assert "'mutations'" in findings[0].message

    def test_foreign_write_through_sets_attr_is_rpr201(self, analyze_tree):
        project = analyze_tree({
            "contracts.py": MINI_CONTRACTS,
            "cache/sets.py": """\
                import numpy as np

                class CacheSets:
                    def __init__(self):
                        self._lba_table = np.full((1, 1), -1)
                        self.mutations = 0
            """,
            "cache/common.py": """\
                from .sets import CacheSets

                class Policy:
                    def __init__(self):
                        self.sets = CacheSets()

                    def shortcut(self, lba):
                        self.sets._lba_table[0, 0] = lba
            """,
        })
        findings = check_effects(project)
        assert codes(findings) == ["RPR201"]
        assert "outside the class" in findings[0].message
        assert "shortcut()" in findings[0].message

    def test_decorated_choke_point_without_bump_is_rpr202(self, analyze_tree):
        project = analyze_tree({
            "contracts.py": MINI_CONTRACTS,
            "cache/sets.py": """\
                from ..contracts import mutates_membership

                class CacheSets:
                    def __init__(self):
                        self._index = {}
                        self.mutations = 0

                    @mutates_membership
                    def _membership_update(self, lba):
                        self._index[lba] = lba
            """,
        })
        findings = check_effects(project)
        assert codes(findings) == ["RPR202"]
        assert "_membership_update()" in findings[0].message
        assert "'mutations'" in findings[0].message

    def test_batch_reader_that_writes_membership_is_rpr203(self, analyze_tree):
        project = analyze_tree({
            "contracts.py": MINI_CONTRACTS,
            "cache/sets.py": """\
                from ..contracts import mutates_membership

                class CacheSets:
                    def __init__(self):
                        self._index = {}
                        self.mutations = 0

                    @mutates_membership
                    def _membership_update(self, lba):
                        self._index[lba] = lba
                        self.mutations += 1

                    def classify(self, lbas):
                        for lba in lbas:
                            self._membership_update(lba)
                        return lbas
            """,
        })
        findings = check_effects(project)
        assert codes(findings) == ["RPR203"]
        assert "classify()" in findings[0].message

    def test_conforming_sets_class_is_clean(self, analyze_tree):
        project = analyze_tree({
            "contracts.py": MINI_CONTRACTS,
            "cache/sets.py": """\
                from ..contracts import mutates_membership

                class CacheSets:
                    def __init__(self):
                        self._index = {}
                        self._order = []
                        self.mutations = 0

                    @mutates_membership
                    def _membership_update(self, lba, add):
                        if add:
                            self._index[lba] = lba
                        else:
                            del self._index[lba]
                        self.mutations += 1

                    def alloc(self, lba):
                        self._order.append(lba)
                        self._membership_update(lba, True)

                    def classify(self, lbas):
                        return [lba in self._index for lba in lbas]

                    def touch_many(self, lbas):
                        order = self._order
                        for lba in lbas:
                            order.append(lba)
            """,
        })
        assert check_effects(project) == []


class TestFastPathSubsumption:
    def test_fast_write_beyond_scalar_set_is_rpr204(self, analyze_tree):
        project = analyze_tree({
            "cache/common.py": """\
                class Policy:
                    def __init__(self):
                        self.stats = {}
                        self.shadow = {}

                    def write(self, lba):
                        self.stats[lba] = 1

                    def _write_fast(self, lba):
                        self.stats[lba] = 1
                        self.shadow[lba] = 1
            """,
        })
        findings = check_effects(project)
        assert codes(findings) == ["RPR204"]
        assert "'shadow'" in findings[0].message
        assert "_write_fast()" in findings[0].message

    def test_subsumption_holds_through_helper_calls(self, analyze_tree):
        # The write-set closure crosses call boundaries: the scalar
        # path writes via a helper, the fast path directly, and the
        # FastAccounting delta surface (_fast) is always admissible.
        project = analyze_tree({
            "cache/common.py": """\
                class Policy:
                    def __init__(self):
                        self.stats = {}
                        self._fast = None

                    def _account(self, lba):
                        self.stats[lba] = 1

                    def write(self, lba):
                        self._account(lba)

                    def _write_fast(self, lba):
                        self.stats[lba] = 1
                        self._fast.write(1)
            """,
        })
        assert check_effects(project) == []

    def test_inherited_scalar_write_set_subsumes_override(self, analyze_tree):
        project = analyze_tree({
            "cache/common.py": """\
                class Base:
                    def __init__(self):
                        self.stats = {}

                    def write(self, lba):
                        self.stats[lba] = 1
            """,
            "cache/wt.py": """\
                from .common import Base

                class WriteThrough(Base):
                    def _write_fast(self, lba):
                        self.stats[lba] = 1
            """,
        })
        assert check_effects(project) == []


class TestSweepRaces:
    def test_module_dict_mutation_in_worker_is_rpr205(self, analyze_tree):
        project = analyze_tree({
            "harness/sweep.py": """\
                _CACHE = {}

                def _remember(key):
                    _CACHE[key] = 1

                def _execute_cell(cell):
                    _remember(cell)
            """,
        })
        findings = check_effects(project)
        assert codes(findings) == ["RPR205"]
        assert "_remember()" in findings[0].message
        assert "_execute_cell" in findings[0].message

    def test_global_statement_in_worker_is_rpr205(self, analyze_tree):
        project = analyze_tree({
            "harness/sweep.py": """\
                _COUNT = 0

                def _execute_cell(cell):
                    global _COUNT
                    _COUNT += 1
            """,
        })
        findings = check_effects(project)
        assert codes(findings) == ["RPR205"]
        assert "'_COUNT'" in findings[0].message

    def test_class_attribute_write_in_worker_is_rpr205(self, analyze_tree):
        project = analyze_tree({
            "harness/sweep.py": """\
                class Config:
                    limit = 3

                def _execute_cell(cell):
                    Config.limit = cell
            """,
        })
        findings = check_effects(project)
        assert codes(findings) == ["RPR205"]
        assert "Config.limit" in findings[0].message

    def test_engine_hook_methods_are_worker_entries(self, analyze_tree):
        project = analyze_tree({
            "engine/hooks.py": """\
                class EngineHook:
                    def on_request(self, op):
                        pass
            """,
            "faults/pipe.py": """\
                from ..engine.hooks import EngineHook

                TALLY = []

                class CountingHook(EngineHook):
                    def on_request(self, op):
                        TALLY.append(op)
            """,
        })
        findings = check_effects(project)
        assert codes(findings) == ["RPR205"]
        assert "CountingHook.on_request()" in findings[0].message

    def test_lru_cache_in_worker_is_rpr206(self, analyze_tree):
        project = analyze_tree({
            "harness/sweep.py": """\
                from functools import lru_cache

                @lru_cache(maxsize=4)
                def _double(key):
                    return key * 2

                def _execute_cell(cell):
                    return _double(cell)
            """,
        })
        findings = check_effects(project)
        assert codes(findings) == ["RPR206"]
        assert "@lru_cache" in findings[0].message
        assert "_double()" in findings[0].message

    def test_allowlisted_memo_is_accepted(self, analyze_tree):
        # repro.harness.sweep:_trace_for is the documented per-process
        # trace memo; the allowlist admits it by project id.
        project = analyze_tree({
            "harness/sweep.py": """\
                from functools import lru_cache

                @lru_cache(maxsize=16)
                def _trace_for(key):
                    return key * 2

                def _execute_cell(cell):
                    return _trace_for(cell)
            """,
        })
        assert check_effects(project) == []

    def test_unreachable_module_state_is_not_flagged(self, analyze_tree):
        project = analyze_tree({
            "harness/sweep.py": """\
                def _execute_cell(cell):
                    return cell
            """,
            "harness/report.py": """\
                _SEEN = {}

                def record(key):
                    _SEEN[key] = 1
            """,
        })
        assert check_effects(project) == []


class TestRealTree:
    def test_src_repro_is_effects_clean(self):
        project = Project.load([SRC_REPRO])
        assert check_effects(project) == []

    def test_findings_and_report_are_discovery_order_invariant(self):
        forward = Project.load(sorted(SRC_REPRO.rglob("*.py")))
        backward = Project.load(sorted(SRC_REPRO.rglob("*.py"), reverse=True))
        assert [f.render() for f in check_effects(forward)] == \
            [f.render() for f in check_effects(backward)]
        assert effects_report(forward) == effects_report(backward)

    def test_effect_model_matches_the_production_contract(self):
        analysis = EffectAnalysis(Project.load([SRC_REPRO]))
        # Exactly one choke point, and it is the CacheSets API.
        assert analysis.choke_points() == \
            ["repro.cache.sets:CacheSets._membership_update"]
        # Every policy fast hook is covered by the subsumption check.
        classes = {cid for cid, _fast, _scalar in analysis.fast_pairs()}
        assert "repro.cache.writethrough:WriteThrough" in classes
        assert "repro.cache.leavo:LeavO" in classes
        assert "repro.core.kdd:KDD" in classes
        # The sweep worker surface includes both cell runners and hooks.
        entries = analysis.sweep_entries()
        assert "repro.harness.sweep:_execute_cell" in entries
        assert any(e.startswith("repro.engine.hooks:") for e in entries)

    def test_removing_the_epoch_bump_fails_the_contract(self, analyze_tree):
        # Acceptance proof: strip the bump from the production choke
        # point and RPR202 must fire on the otherwise-identical tree.
        sets_src = (SRC_REPRO / "cache" / "sets.py").read_text()
        contracts_src = (SRC_REPRO / "contracts.py").read_text()
        broken = sets_src.replace("self.mutations += 1", "pass")
        assert broken != sets_src
        project = analyze_tree({
            "contracts.py": contracts_src,
            "cache/sets.py": broken,
        })
        findings = check_effects(project)
        assert codes(findings) == ["RPR202"]
        assert "_membership_update()" in findings[0].message

    def test_effects_report_shape(self, tmp_path):
        import json

        doc = json.loads(effects_report(Project.load([SRC_REPRO])))
        assert doc["version"] == 1
        assert doc["membership"]["epoch"] == "mutations"
        assert sorted(doc["membership"]["attrs"]) == \
            ["_index", "_lba_table"]
        assert all(fp["extra"] == [] for fp in doc["fast_paths"])
        cached = doc["sweep"]["cached_functions"]
        assert cached and all(entry["allowlisted"] for entry in cached)


# -- recovery read-surface (RPR207) ------------------------------------------

#: Mini twin of the persistence stack: module paths and class names
#: match the production RECOVERY_ROOTS / RECOVERY_SURFACE bindings, so
#: the rule runs on the fixture tree exactly as on the real one.
MINI_RECOVERY_STACK = {
    "nvram/metabuffer.py": """\
        class MetadataBuffer:
            def __init__(self):
                self._entries = {}
                self._hot_index = {}

            def snapshot(self):
                return list(self._entries.values())
    """,
    "nvram/staging.py": """\
        class StagingBuffer:
            def __init__(self):
                self._entries = {}
                self._flushing = {}

            def snapshot(self):
                return list(self._flushing.values()) + \\
                    list(self._entries.values())
    """,
    "cache/mlog.py": """\
        from ..nvram.metabuffer import MetadataBuffer

        class MetadataLog:
            def __init__(self):
                self.buffer = MetadataBuffer()
                self.head = 0
                self.tail = 0
                self._page_image = {}
                self._committing = []
                self._relocating = []
                self._shadow_map = {}

            def replay(self):
                out = {}
                for seq in range(self.head, self.tail):
                    for entry in self._page_image.get(seq, ()):
                        out[entry] = entry
                return out

            def nvram_entries(self):
                out = list(self._relocating)
                for batch in self._committing:
                    out.extend(batch)
                out.extend(self.buffer.snapshot())
                return out
    """,
    "core/recovery.py": """\
        def recover_from_power_failure(kdd):
            mapping = kdd.mlog.replay()
            for entry in kdd.mlog.nvram_entries():
                mapping[entry] = entry
            for staged in kdd.staging.snapshot():
                mapping[staged] = staged
            return mapping
    """,
}


def recovery_tree(**overrides):
    files = dict(MINI_RECOVERY_STACK)
    files.update(overrides)
    return files


class TestRecoverySurface:
    def test_conforming_recovery_stack_is_clean(self, analyze_tree):
        project = analyze_tree(recovery_tree())
        assert check_effects(project) == []

    def test_direct_read_outside_roots_is_rpr207(self, analyze_tree):
        project = analyze_tree(recovery_tree(**{
            "core/recovery.py": """\
                def recover_from_power_failure(kdd):
                    mapping = kdd.mlog.replay()
                    for line in kdd.sets.all_lines():
                        mapping[line] = line
                    return mapping
            """,
        }))
        findings = check_effects(project)
        assert codes(findings) == ["RPR207"]
        assert "'sets'" in findings[0].message
        assert "recover_from_power_failure()" in findings[0].message

    def test_interprocedural_volatile_read_is_rpr207(self, analyze_tree):
        # The entry point itself is conforming; the escape is one call
        # deep, inside the surface class -- the closure must follow it.
        mlog = MINI_RECOVERY_STACK["cache/mlog.py"].replace(
            "out = {}", "out = dict(self._shadow_map)")
        assert mlog != MINI_RECOVERY_STACK["cache/mlog.py"]
        project = analyze_tree(recovery_tree(**{"cache/mlog.py": mlog}))
        findings = check_effects(project)
        assert codes(findings) == ["RPR207"]
        assert "MetadataLog._shadow_map" in findings[0].message
        assert "MetadataLog.replay()" in findings[0].message

    def test_two_level_closure_through_sub_object_is_rpr207(self, analyze_tree):
        # recovery -> mlog.nvram_entries -> buffer.snapshot: a volatile
        # read at the third hop must still surface.
        buf = MINI_RECOVERY_STACK["nvram/metabuffer.py"].replace(
            "return list(self._entries.values())",
            "return list(self._hot_index) + list(self._entries.values())")
        assert buf != MINI_RECOVERY_STACK["nvram/metabuffer.py"]
        project = analyze_tree(recovery_tree(**{"nvram/metabuffer.py": buf}))
        findings = check_effects(project)
        assert codes(findings) == ["RPR207"]
        assert "MetadataBuffer._hot_index" in findings[0].message

    def test_passing_crashed_object_onward_is_rpr207(self, analyze_tree):
        project = analyze_tree(recovery_tree(**{
            "core/recovery.py": """\
                def _helper(kdd):
                    return kdd

                def recover_from_power_failure(kdd):
                    mapping = kdd.mlog.replay()
                    _helper(kdd)
                    return mapping
            """,
        }))
        findings = check_effects(project)
        assert codes(findings) == ["RPR207"]
        assert "passes the crashed object" in findings[0].message

    def test_real_tree_entry_is_present_and_clean(self):
        # Guard against the rule silently no-opping: the production
        # entry point must exist under the exact id the rule binds to,
        # and its read-closure must stay inside the declared surface.
        from repro.devtools.analyze.effects import RECOVERY_ENTRY

        project = Project.load([SRC_REPRO])
        assert RECOVERY_ENTRY in project.functions
        analysis = EffectAnalysis(project)
        assert analysis.check_recovery_surface() == []

    def test_shrunk_surface_fires_on_real_tree(self, monkeypatch):
        # Acceptance proof on the production tree: hide one genuinely
        # consulted attribute from the declared surface and the rule
        # must fire at the real read site.
        import repro.devtools.analyze.effects as effects_mod

        shrunk = {
            cls: attrs - {"buffer"}
            for cls, attrs in effects_mod.RECOVERY_SURFACE.items()
        }
        monkeypatch.setattr(effects_mod, "RECOVERY_SURFACE", shrunk)
        analysis = EffectAnalysis(Project.load([SRC_REPRO]))
        findings = analysis.check_recovery_surface()
        assert [f.code for f in findings] == ["RPR207"]
        assert "MetadataLog.buffer" in findings[0].message
