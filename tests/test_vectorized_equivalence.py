"""Property tests: the columnar fast path is result-identical.

``process_trace(vectorized=True)`` must produce exactly the counters,
RAID accounting, policy extras and *eviction sequence* of the scalar
per-access loop, for every policy and any trace.  Hypothesis drives
random synthetic traces through both paths and compares everything
observable; a deterministic test also pins that the columnar hook
actually engages (a silent fallback to the scalar loop would make the
equivalence vacuous).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cache.base import CacheConfig
from repro.cache.common import SetAssocPolicy
from repro.core.kdd import KDD
from repro.harness.runner import POLICIES, make_raid_for_trace
from repro.traces import Trace, empty_records

POLICY_NAMES = ("nossd", "wt", "wa", "wb", "leavo", "kdd")


def make_trace(rows):
    """rows: list of (lba, npages, is_read); arrival time = index."""
    rec = empty_records(len(rows))
    for i, (lba, n, r) in enumerate(rows):
        rec[i] = (float(i), lba, n, r)
    return Trace(rec, name="prop")


def run_policy(name, trace, cache_pages, vectorized, **config_kwargs):
    """One full run; returns every externally observable outcome."""
    cls = POLICIES[name]
    evictions: list[int] = []

    class Recording(cls):
        def _drop_line(self, line):
            evictions.append(line.lba)
            super()._drop_line(line)

    config = CacheConfig(cache_pages=cache_pages, **config_kwargs)
    raid = make_raid_for_trace(trace)
    policy = Recording(config, raid)
    stats = policy.process_trace(trace, vectorized=vectorized)
    extras = {}
    if isinstance(policy, KDD):
        extras = dict(
            cleanings=policy.cleanings,
            forced_cleanings=policy.forced_cleanings,
            dez_pages=len(policy.dez_pages),
            mlog_gc_pages=policy.mlog.gc_pages_reclaimed,
        )
    policy.check_invariants()
    return stats, raid.counters, extras, evictions


requests = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=199),   # lba
        st.integers(min_value=1, max_value=4),     # npages
        st.booleans(),                             # is_read
    ),
    min_size=0,
    max_size=250,
)


@settings(max_examples=30, deadline=None)
@given(
    rows=requests,
    policy=st.sampled_from(POLICY_NAMES),
    cache_pages=st.sampled_from((64, 96, 128)),
    compression=st.sampled_from((0.12, 0.25, 0.50)),
    seed=st.integers(min_value=0, max_value=3),
)
def test_vectorized_matches_scalar(rows, policy, cache_pages, compression,
                                   seed):
    trace = make_trace(rows)
    kwargs = dict(mean_compression=compression, seed=seed)
    scalar = run_policy(policy, trace, cache_pages, vectorized=False, **kwargs)
    vector = run_policy(policy, trace, cache_pages, vectorized=True, **kwargs)
    assert scalar[0] == vector[0], "traffic counters diverged"
    assert scalar[1] == vector[1], "raid counters diverged"
    assert scalar[2] == vector[2], "policy extras diverged"
    assert scalar[3] == vector[3], "eviction sequences diverged"


@settings(max_examples=20, deadline=None)
@given(
    rows=requests,
    policy=st.sampled_from(("leavo", "kdd")),
    watermark=st.sampled_from(((0.3, 0.5), (0.1, 0.9))),
)
def test_vectorized_matches_scalar_under_cleaning_pressure(
    rows, policy, watermark
):
    """Delayed-parity policies with tight dirty thresholds clean often;
    the cleaning/staging machinery must stay equivalent too."""
    low, dirty = watermark
    trace = make_trace(rows)
    kwargs = dict(low_watermark=low, dirty_threshold=dirty,
                  mean_compression=0.25)
    scalar = run_policy(policy, trace, 64, vectorized=False, **kwargs)
    vector = run_policy(policy, trace, 64, vectorized=True, **kwargs)
    assert scalar == vector


def test_columnar_path_engages(monkeypatch):
    """Guard against a silent fallback making the equivalence vacuous."""
    engaged = []
    orig = SetAssocPolicy._process_columnar

    def spy(self, trace):
        handled = orig(self, trace)
        engaged.append((type(self).__name__, handled))
        return handled

    monkeypatch.setattr(SetAssocPolicy, "_process_columnar", spy)
    rng = np.random.default_rng(0)
    rows = [
        (int(rng.integers(0, 200)), 1, bool(rng.integers(0, 2)))
        for _ in range(400)
    ]
    trace = make_trace(rows)
    for name in ("wt", "wa", "wb", "leavo", "kdd"):
        run_policy(name, trace, 64, vectorized=True)
    assert all(handled for _, handled in engaged), engaged
    assert len(engaged) == 5
