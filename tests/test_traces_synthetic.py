"""Tests for synthetic workload generators."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.traces import (
    FootprintSpec,
    footprint_workload,
    sequential_workload,
    uniform_workload,
    zipf_ranks,
    zipf_workload,
)


def test_uniform_workload_shape():
    tr = uniform_workload(1000, universe_pages=500, read_ratio=0.5, seed=1)
    assert len(tr) == 1000
    assert tr.max_page <= 500
    s = tr.stats()
    assert 0.4 < s.read_ratio < 0.6


def test_sequential_workload_is_sequential():
    tr = sequential_workload(10, npages_per_request=8, seed=1)
    lbas = [r.lba for r in tr]
    assert lbas == list(range(0, 80, 8))


def test_zipf_ranks_skew():
    rng = np.random.default_rng(0)
    ranks = zipf_ranks(rng, 50_000, 1000, alpha=1.2)
    # rank 0 must be far more popular than the median rank
    counts = np.bincount(ranks, minlength=1000)
    assert counts[0] > 10 * counts[500]


def test_zipf_alpha_zero_is_uniform():
    rng = np.random.default_rng(0)
    ranks = zipf_ranks(rng, 50_000, 100, alpha=0.0)
    counts = np.bincount(ranks, minlength=100)
    assert counts.min() > 300  # roughly even

def test_zipf_ranks_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ConfigError):
        zipf_ranks(rng, 10, 0, 1.0)
    with pytest.raises(ConfigError):
        zipf_ranks(rng, 10, 10, -1.0)


def test_zipf_workload_read_ratio():
    tr = zipf_workload(20_000, 1000, read_ratio=0.75, seed=3)
    assert abs(tr.stats().read_ratio - 0.75) < 0.02


def test_zipf_workload_scatters_hot_pages():
    a = zipf_workload(5000, 1000, seed=1)
    b = zipf_workload(5000, 1000, seed=2)
    hot_a = np.bincount(a.records["lba"].astype(int), minlength=1000).argmax()
    hot_b = np.bincount(b.records["lba"].astype(int), minlength=1000).argmax()
    assert hot_a != hot_b  # hottest page position depends on the seed


def test_footprint_spec_scaled():
    spec = FootprintSpec(
        name="x",
        read_only_pages=100,
        write_only_pages=200,
        shared_pages=50,
        read_requests=1000,
        write_requests=2000,
    )
    half = spec.scaled(0.5)
    assert half.read_only_pages == 50
    assert half.write_requests == 1000
    with pytest.raises(ConfigError):
        spec.scaled(0)


def test_footprint_spec_rejects_uncoverable():
    with pytest.raises(ConfigError):
        FootprintSpec(
            name="bad",
            read_only_pages=100,
            write_only_pages=0,
            shared_pages=0,
            read_requests=50,  # cannot touch 100 unique pages in 50 requests
            write_requests=0,
        )


@pytest.mark.parametrize("seed", [0, 7])
def test_footprint_workload_matches_spec_exactly(seed):
    spec = FootprintSpec(
        name="cal",
        read_only_pages=300,
        write_only_pages=500,
        shared_pages=200,
        read_requests=4000,
        write_requests=6000,
        read_alpha=0.9,
        write_alpha=1.1,
    )
    s = footprint_workload(spec, seed=seed).stats()
    assert s.unique_read_pages == spec.unique_read_pages
    assert s.unique_write_pages == spec.unique_write_pages
    assert s.unique_pages == spec.unique_pages
    assert s.read_requests == spec.read_requests
    assert s.write_requests == spec.write_requests


def test_footprint_workload_deterministic():
    spec = FootprintSpec(
        name="d",
        read_only_pages=10,
        write_only_pages=10,
        shared_pages=5,
        read_requests=100,
        write_requests=100,
    )
    a = footprint_workload(spec, seed=42)
    b = footprint_workload(spec, seed=42)
    assert np.array_equal(a.records, b.records)


def test_footprint_workload_has_spatial_runs():
    spec = FootprintSpec(
        name="runs",
        read_only_pages=0,
        write_only_pages=1600,
        shared_pages=0,
        read_requests=0,
        write_requests=1600,
        run_length=16,
    )
    tr = footprint_workload(spec, seed=0)
    pages = np.sort(np.unique(tr.records["lba"].astype(np.int64)))
    gaps = np.diff(pages)
    # clustered layout => most unique pages are adjacent to another one
    assert (gaps == 1).mean() > 0.8
