"""Tests for the RAID array: small writes, delayed parity, failures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, DegradedError, RaidError
from repro.raid import (
    DiskOp,
    OpKind,
    RAIDArray,
    RaidLevel,
    rebuild_disk,
    resync_stale_parity,
)


def r5(store=False, chunk_pages=4, ndisks=5, pages_per_disk=64):
    return RAIDArray(
        RaidLevel.RAID5,
        ndisks=ndisks,
        chunk_pages=chunk_pages,
        pages_per_disk=pages_per_disk,
        page_size=64,
        store_data=store,
    )


def page_bytes(seed: int) -> bytes:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=64, dtype=np.uint8).tobytes()


class TestSmallWrite:
    def test_single_page_write_is_2r2w(self):
        """The small write problem: 1 logical write -> 2 reads + 2 writes."""
        arr = r5()
        ops = arr.write(0)
        reads = [o for o in ops if o.is_read]
        writes = [o for o in ops if not o.is_read]
        assert len(reads) == 2 and len(writes) == 2
        assert {o.kind for o in writes} == {OpKind.DATA, OpKind.PARITY}

    def test_full_stripe_write_needs_no_reads(self):
        arr = r5(chunk_pages=1)
        ops = arr.write(0, npages=arr.layout.stripe_data_pages)
        assert not any(o.is_read for o in ops)
        writes = [o for o in ops if not o.is_read]
        assert len(writes) == arr.ndisks  # 4 data + 1 parity

    def test_majority_stripe_write_uses_rcw(self):
        arr = r5(chunk_pages=1)  # 4 data disks per stripe
        ops = arr.write(0, npages=3)  # rcw: read 1, write 4 < rmw: read 4 wr 4
        reads = [o for o in ops if o.is_read]
        assert len(reads) == 1
        assert reads[0].kind is OpKind.DATA

    def test_counters_accumulate(self):
        arr = r5()
        arr.write(0)
        arr.read(0)
        c = arr.counters
        assert c.data_writes == 1 and c.parity_writes == 1
        assert c.data_reads == 2  # 1 rmw read + 1 host read
        assert c.parity_reads == 1
        assert c.total == 5  # rmw (2r + 2w) plus the host read

    def test_raid6_small_write_updates_p_and_q(self):
        arr = RAIDArray(RaidLevel.RAID6, ndisks=6, chunk_pages=2,
                        pages_per_disk=64, page_size=64)
        ops = arr.write(0)
        kinds = [(o.kind, o.is_read) for o in ops]
        assert (OpKind.PARITY, False) in kinds
        assert (OpKind.Q_PARITY, False) in kinds
        assert (OpKind.PARITY, True) in kinds
        assert (OpKind.Q_PARITY, True) in kinds


class TestPayload:
    def test_write_read_roundtrip(self):
        arr = r5(store=True)
        data = page_bytes(1)
        arr.write(3, data=[data])
        assert arr.read_data(3).tobytes() == data

    def test_parity_consistent_after_writes(self):
        arr = r5(store=True)
        for lpage in range(10):
            arr.write(lpage, data=[page_bytes(lpage)])
        for stripe in {arr.layout.stripe_of(p) for p in range(10)}:
            assert arr.verify_stripe(stripe)

    def test_degraded_read_reconstructs(self):
        arr = r5(store=True)
        data = page_bytes(7)
        arr.write(0, data=[data])
        disk = arr.layout.locate(0).disk
        arr.fail_disk(disk)
        assert arr.read_data(0).tobytes() == data

    def test_read_data_requires_store(self):
        with pytest.raises(ConfigError):
            r5(store=False).read_data(0)


class TestDelayedParity:
    def test_write_without_parity_is_one_io(self):
        arr = r5()
        ops = arr.write_without_parity_update(0)
        assert len(ops) == 1 and not ops[0].is_read
        assert arr.layout.stripe_of(0) in arr.stale_stripes

    def test_parity_update_rmw_reads_and_writes_parity(self):
        arr = r5()
        arr.write_without_parity_update(0)
        stripe = arr.layout.stripe_of(0)
        ops = arr.parity_update(stripe, deltas={0: b""}, cached_pages=[0])
        parity_reads = [o for o in ops if o.is_read and o.kind is OpKind.PARITY]
        parity_writes = [o for o in ops if not o.is_read and o.kind is OpKind.PARITY]
        assert len(parity_reads) == 1 and len(parity_writes) == 1
        assert stripe not in arr.stale_stripes

    def test_parity_update_rcw_when_all_cached(self):
        arr = r5(chunk_pages=1)
        arr.write_without_parity_update(0)
        stripe = arr.layout.stripe_of(0)
        all_pages = list(arr.layout.stripe_pages(stripe))
        ops = arr.parity_update(stripe, cached_pages=all_pages)
        assert not any(o.is_read for o in ops)  # reconstruct-write: writes only

    def test_parity_update_noop_when_not_stale(self):
        arr = r5()
        assert arr.parity_update(0) == []

    def test_delayed_write_payload_consistency(self):
        """After delayed writes + parity_update the stripe verifies."""
        arr = r5(store=True, chunk_pages=2)
        arr.write(0, data=[page_bytes(0)])
        arr.write_without_parity_update(1, data=page_bytes(1))
        stripe = arr.layout.stripe_of(1)
        assert not arr.verify_stripe(stripe)  # parity is stale
        arr.parity_update(stripe, deltas={1: b""}, cached_pages=[1])
        assert arr.verify_stripe(stripe)

    def test_delayed_parity_requires_parity_level(self):
        arr = RAIDArray(RaidLevel.RAID0, ndisks=4, chunk_pages=2,
                        pages_per_disk=64, page_size=64)
        with pytest.raises(RaidError):
            arr.write_without_parity_update(0)


class TestFailures:
    def test_too_many_failures(self):
        arr = r5()
        arr.fail_disk(0)
        with pytest.raises(DegradedError):
            arr.fail_disk(1)

    def test_degraded_read_costs_whole_stripe(self):
        arr = r5(chunk_pages=1)
        disk = arr.layout.locate(0).disk
        arr.fail_disk(disk)
        ops = arr.read(0)
        assert len(ops) == arr.ndisks - 1  # peers + parity

    def test_degraded_read_with_stale_parity_is_data_loss(self):
        """The vulnerability window KDD avoids (Section II-B)."""
        arr = r5()
        arr.write_without_parity_update(0)
        other = arr.layout.locate(arr.layout.stripe_data_pages).disk
        victim = arr.layout.locate(0).disk
        arr.fail_disk(victim)
        with pytest.raises(DegradedError):
            arr.read(0)

    def test_resync_clears_stale_stripes(self):
        arr = r5()
        arr.write_without_parity_update(0)
        arr.write_without_parity_update(arr.layout.stripe_data_pages)
        report = resync_stale_parity(arr)
        assert report.stripes_resynced == 2
        assert not arr.stale_stripes

    def test_resync_with_failed_disk_raises(self):
        arr = r5()
        arr.write_without_parity_update(0)
        arr.fail_disk(arr.layout.locate(0).disk)
        with pytest.raises(DegradedError):
            resync_stale_parity(arr)

    def test_rebuild_requires_fresh_parity(self):
        arr = r5()
        arr.write_without_parity_update(0)
        arr.fail_disk(2)
        with pytest.raises(DegradedError):
            rebuild_disk(arr, 2)

    def test_rebuild_restores_payload(self):
        arr = r5(store=True, chunk_pages=2, pages_per_disk=8)
        payloads = {}
        for lpage in range(0, 16):
            payloads[lpage] = page_bytes(lpage)
            arr.write(lpage, data=[payloads[lpage]])
        victim = arr.layout.locate(0).disk
        arr.fail_disk(victim)
        report = rebuild_disk(arr, victim)
        assert report.pages_rebuilt > 0
        assert not arr.degraded
        for lpage, data in payloads.items():
            assert arr.read_data(lpage).tobytes() == data

    def test_rebuild_nonfailed_disk_rejected(self):
        with pytest.raises(DegradedError):
            rebuild_disk(r5(), 0)


class TestRaid1:
    def test_writes_mirror_everywhere(self):
        arr = RAIDArray(RaidLevel.RAID1, ndisks=3, chunk_pages=2,
                        pages_per_disk=64, page_size=64, store_data=True)
        ops = arr.write(0, data=[page_bytes(0)])
        writes = [o for o in ops if not o.is_read]
        assert {o.disk for o in writes} == {0, 1, 2}

    def test_survives_all_but_one(self):
        arr = RAIDArray(RaidLevel.RAID1, ndisks=3, chunk_pages=2,
                        pages_per_disk=64, page_size=64, store_data=True)
        arr.write(0, data=[page_bytes(9)])
        arr.fail_disk(0)
        arr.fail_disk(1)
        assert arr.read_data(0).tobytes() == page_bytes(9)


@settings(max_examples=25, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 31), st.booleans(), st.integers(0, 2**16)),
        min_size=1,
        max_size=40,
    )
)
def test_property_delayed_parity_always_repairable(writes):
    """Any mix of normal and parity-delayed writes; after parity_update of
    every stale stripe, all stripes verify and payload reads match the
    last written value."""
    arr = r5(store=True, chunk_pages=2, pages_per_disk=16)
    latest: dict[int, bytes] = {}
    for lpage, delayed, seed in writes:
        data = page_bytes(seed)
        if delayed:
            arr.write_without_parity_update(lpage, data=data)
        else:
            arr.write(lpage, data=[data])
        latest[lpage] = data
    for stripe in sorted(arr.stale_stripes):
        arr.parity_update(stripe, cached_pages=list(arr.layout.stripe_pages(stripe)))
    touched_stripes = {arr.layout.stripe_of(p) for p in latest}
    for stripe in touched_stripes:
        assert arr.verify_stripe(stripe)
    for lpage, data in latest.items():
        assert arr.read_data(lpage).tobytes() == data
