"""End-to-end integration tests across the whole stack.

These run real traces through policies wired to *payload-carrying*
RAID arrays and FTL-backed flash devices, asserting global invariants
the unit tests cannot see:

* every write reaches the RAID array before/with acknowledgement (RPO=0);
* after a KDD/LeavO run finishes, every touched stripe's parity verifies
  bit-for-bit;
* the flash device's mapping stays consistent under a full policy run;
* conservation: SSD write counters decompose exactly into their causes.
"""

import pytest

from repro.cache import CacheConfig, LeavO, WriteThrough
from repro.core import KDD
from repro.harness import simulate_policy
from repro.raid import RAIDArray, RaidLevel
from repro.traces import uniform_workload, zipf_workload


def payload_raid():
    return RAIDArray(
        RaidLevel.RAID5,
        ndisks=5,
        chunk_pages=4,
        pages_per_disk=2048,
        page_size=64,
        store_data=True,
    )


def run_policy(policy_cls, trace, cache_pages=128, **cfg_kw):
    raid = payload_raid()
    cfg_kw.setdefault("ways", 16)
    cfg_kw.setdefault("group_pages", 16)
    cfg_kw.setdefault("page_size", 64)
    policy = policy_cls(CacheConfig(cache_pages=cache_pages, **cfg_kw), raid)
    policy.process_trace(trace)
    return policy, raid


@pytest.fixture(scope="module")
def mixed_trace():
    return zipf_workload(4000, 1200, alpha=1.0, read_ratio=0.4, seed=11)


@pytest.mark.parametrize("policy_cls", [WriteThrough, LeavO, KDD])
def test_parity_consistent_after_full_run(policy_cls, mixed_trace):
    """After finish(), every stripe of the array verifies bit-for-bit."""
    policy, raid = run_policy(policy_cls, mixed_trace)
    assert not raid.stale_stripes
    touched = {
        raid.layout.stripe_of(int(lba)) for lba in mixed_trace.records["lba"]
    }
    for stripe in touched:
        assert raid.verify_stripe(stripe), stripe


@pytest.mark.parametrize("policy_cls", [WriteThrough, LeavO, KDD])
def test_every_write_reaches_raid(policy_cls, mixed_trace):
    """RPO=0: member data writes >= logical writes (none are cached-only)."""
    policy, raid = run_policy(policy_cls, mixed_trace)
    assert raid.counters.data_writes >= policy.stats.writes


def test_kdd_invariants_hold_on_real_trace(mixed_trace):
    policy, raid = run_policy(KDD, mixed_trace, dirty_threshold=0.4,
                              low_watermark=0.2)
    policy.check_invariants()


def test_write_traffic_conservation(mixed_trace):
    """ssd_writes always equals the sum of its cause counters."""
    for name in ("wt", "wa", "leavo", "kdd"):
        r = simulate_policy(name, mixed_trace, cache_pages=256, seed=1)
        s = r.stats
        assert s.ssd_writes == (
            s.fill_writes + s.data_writes + s.delta_writes + s.meta_writes
        )
        assert s.read_hits + s.read_misses + s.write_hits + s.write_misses == 4000


def test_kdd_with_flash_model_end_to_end():
    """KDD on an FTL-backed device: mapping stays consistent, WAF sane."""
    trace = zipf_workload(5000, 800, alpha=1.1, read_ratio=0.3, seed=3)
    r = simulate_policy("kdd", trace, cache_pages=256, seed=1, flash_model=True)
    assert 1.0 <= r.extras["write_amplification"] < 4.0


def test_wt_flash_model_invariants():
    trace = uniform_workload(3000, 600, read_ratio=0.5, seed=4)
    raid = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=4,
                     pages_per_disk=4096)
    cfg = CacheConfig(cache_pages=256, ways=16, flash_model=True)
    policy = WriteThrough(cfg, raid)
    policy.process_trace(trace)
    policy.ssd.ftl.check_invariants()


def test_policies_traffic_ordering_integration(mixed_trace):
    """The paper's global ordering on a mixed trace: WA < KDD < WT < LeavO."""
    writes = {
        name: simulate_policy(name, mixed_trace, cache_pages=256,
                              seed=1).ssd_write_pages
        for name in ("wa", "kdd", "wt", "leavo")
    }
    assert writes["wa"] < writes["kdd"] < writes["wt"] < writes["leavo"]


def test_stronger_locality_less_traffic(mixed_trace):
    results = [
        simulate_policy("kdd", mixed_trace, cache_pages=256, seed=1,
                        mean_compression=m).ssd_write_pages
        for m in (0.50, 0.25, 0.12)
    ]
    assert results[0] >= results[1] >= results[2]


def test_kdd_raid_io_not_worse_than_nossd(mixed_trace):
    """Delayed parity must reduce RAID member I/O, never inflate it."""
    kdd = simulate_policy("kdd", mixed_trace, cache_pages=256, seed=1)
    nossd = simulate_policy("nossd", mixed_trace, cache_pages=256, seed=1)
    assert kdd.raid.total <= nossd.raid.total
