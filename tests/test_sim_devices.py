"""Tests for the FCFS device servers."""

import pytest

from repro.errors import ConfigError
from repro.flash import SSDLatency
from repro.sim import DiskServer, SSDServer


class TestDiskServer:
    def test_fcfs_queueing(self):
        d = DiskServer()
        w1 = d.serve(1000, 1, True, earliest=0.0)
        w2 = d.serve(50_000, 1, True, earliest=0.0)
        assert w2.start == pytest.approx(w1.finish)
        assert w2.finish > w2.start

    def test_idle_server_starts_at_arrival(self):
        d = DiskServer()
        w = d.serve(0, 1, True, earliest=5.0)
        assert w.start == pytest.approx(5.0)

    def test_sequential_faster_than_random(self):
        d1 = DiskServer()
        d1.serve(1000, 8, True, 0.0)
        seq = d1.serve(1008, 8, True, 0.0)
        d2 = DiskServer()
        d2.serve(1000, 8, True, 0.0)
        rnd = d2.serve(900_000, 8, True, 0.0)
        assert (seq.finish - seq.start) < (rnd.finish - rnd.start)


class TestSSDServer:
    def test_parallel_batch(self):
        s = SSDServer(SSDLatency(page_read=100e-6, command_overhead=0.0), channels=8)
        w8 = s.serve_read(8, 0.0)
        assert (w8.finish - w8.start) == pytest.approx(100e-6)
        w9 = s.serve_read(9, 0.0)
        assert (w9.finish - w9.start) == pytest.approx(200e-6)

    def test_fcfs(self):
        s = SSDServer()
        w1 = s.serve_write(1, 0.0)
        w2 = s.serve_read(1, 0.0)
        assert w2.start == pytest.approx(w1.finish)

    def test_counters(self):
        s = SSDServer()
        s.serve_read(3, 0.0)
        s.serve_write(2, 0.0)
        assert s.reads == 3 and s.writes == 2

    def test_validation(self):
        s = SSDServer()
        with pytest.raises(ConfigError):
            s.serve_read(0, 0.0)
        with pytest.raises(ConfigError):
            SSDServer(channels=0)

    def test_reads_faster_than_writes(self):
        s = SSDServer()
        r = s.serve_read(1, 0.0)
        w = s.serve_write(1, r.finish)
        assert (w.finish - w.start) > (r.finish - r.start)
