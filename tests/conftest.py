"""Shared test configuration: hypothesis profiles.

The ``ci`` profile derandomizes hypothesis so the failure-injection
property tests explore the same example sequence on every run — the
same discipline the simulator itself follows (seeded streams, no wall
clock).  Select it with ``HYPOTHESIS_PROFILE=ci`` (the CI workflow
does); the default profile keeps local runs exploratory.
"""

import os

from hypothesis import settings

settings.register_profile("ci", derandomize=True, print_blob=True,
                          deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
