"""Shared test configuration: hypothesis profiles.

The ``ci`` profile derandomizes hypothesis so the failure-injection
property tests explore the same example sequence on every run — the
same discipline the simulator itself follows (seeded streams, no wall
clock).  Select it with ``HYPOTHESIS_PROFILE=ci`` (the CI workflow
does); the default profile keeps local runs exploratory.
"""

import os

import pytest
from hypothesis import settings

from tests.analyze_fixtures import write_fixture_tree

settings.register_profile("ci", derandomize=True, print_blob=True,
                          deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def analyze_tree(tmp_path):
    """Factory: fixture files -> loaded analyzer ``Project``."""

    def build(files):
        from repro.devtools.analyze import Project

        return Project.load([write_fixture_tree(tmp_path, files)])

    return build
