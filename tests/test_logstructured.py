"""Tests for log-structured RAID (dynamic striping)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CapacityError, ConfigError
from repro.raid import LogStructuredRaid, RAIDArray, RaidLevel


def make_ls(chunk_pages=2, pages_per_disk=64, reserve=2, ndisks=5):
    array = RAIDArray(RaidLevel.RAID5, ndisks=ndisks, chunk_pages=chunk_pages,
                      pages_per_disk=pages_per_disk)
    return LogStructuredRaid(array, reserve_stripes=reserve)


class TestFullStripeWrites:
    def test_no_reads_on_write_path(self):
        ls = make_ls()
        all_ops = []
        for lpage in range(ls.stripe_pages):
            all_ops += ls.write(lpage)
        assert ls.full_stripe_writes == 1
        assert not any(op.is_read for op in all_ops)

    def test_stripe_write_touches_every_member_once(self):
        ls = make_ls()
        ops = []
        for lpage in range(ls.stripe_pages):
            ops += ls.write(lpage)
        disks = [op.disk for op in ops]
        assert sorted(disks) == list(range(5))  # 4 data + 1 parity

    def test_member_writes_cheaper_than_rmw(self):
        """The whole point: n+1 chunk writes per stripe vs 4 I/Os per page."""
        ls = make_ls(chunk_pages=4, pages_per_disk=512, reserve=4)
        rmw = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=4,
                        pages_per_disk=512)
        n = ls.stripe_pages * 4
        for lpage in range(n):
            ls.write(lpage)
            rmw.write(lpage)
        assert ls.array.counters.total < rmw.counters.total / 3

    def test_overwrite_in_nvram_coalesces(self):
        ls = make_ls()
        ls.write(0)
        ops = ls.write(0)
        assert ops == []
        assert ls.host_writes == 2

    def test_nvram_read_hit_costs_nothing(self):
        ls = make_ls()
        ls.write(0)
        assert ls.read(0) == []

    def test_read_follows_relocation(self):
        ls = make_ls()
        for lpage in range(ls.stripe_pages):
            ls.write(lpage)
        ops = ls.read(0)
        assert len(ops) == 1 and ops[0].is_read
        ls.check_invariants()


class TestCleaning:
    def test_gc_reclaims_overwritten_stripes(self):
        ls = make_ls(chunk_pages=2, pages_per_disk=32, reserve=2)
        # hammer a working set smaller than the array
        for _round in range(12):
            for lpage in range(ls.stripe_pages * 2):
                ls.write(lpage)
        assert ls.gc_runs > 0
        assert ls.write_amplification >= 1.0
        ls.check_invariants()

    def test_higher_utilisation_more_cleaning(self):
        """Random overwrites leave mixed live/dead stripes; cleaning cost
        (the LFS trade-off) grows with space utilisation."""
        import numpy as np

        def waf_at(fill_fraction):
            ls = make_ls(chunk_pages=2, pages_per_disk=128, reserve=4)
            footprint = int(ls.exported_pages * fill_fraction)
            rng = np.random.default_rng(1)
            for lpage in rng.integers(0, footprint, size=8 * footprint):
                ls.write(int(lpage))
            return ls.write_amplification

        assert waf_at(0.95) > waf_at(0.3)

    def test_sequential_overwrite_is_free_of_cleaning(self):
        """LFS best case: whole stripes die together, GC moves nothing."""
        ls = make_ls(chunk_pages=2, pages_per_disk=128, reserve=4)
        footprint = ls.exported_pages // 2
        for _round in range(6):
            for lpage in range(footprint):
                ls.write(lpage)
        assert ls.write_amplification == 1.0

    def test_capacity_error_beyond_export(self):
        ls = make_ls()
        with pytest.raises(CapacityError):
            ls.write(ls.exported_pages)

    def test_flush_seals_partial_stripe(self):
        ls = make_ls()
        ls.write(0)
        ops = ls.flush()
        assert ops  # a (short) stripe write happened
        assert ls.read(0)  # now served from disk
        ls.check_invariants()


class TestValidation:
    def test_raid0_rejected(self):
        arr = RAIDArray(RaidLevel.RAID0, ndisks=4, chunk_pages=2,
                        pages_per_disk=64)
        with pytest.raises(ConfigError):
            LogStructuredRaid(arr)

    def test_reserve_too_big(self):
        arr = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=2,
                        pages_per_disk=8)
        with pytest.raises(ConfigError):
            LogStructuredRaid(arr, reserve_stripes=10)


@settings(max_examples=20, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, 47)), min_size=1, max_size=250
    )
)
def test_property_mapping_consistent(ops):
    ls = make_ls(chunk_pages=2, pages_per_disk=32, reserve=2)
    written = set()
    for is_read, lpage in ops:
        lpage = lpage % ls.exported_pages
        if is_read:
            ls.read(lpage)
        else:
            ls.write(lpage)
            written.add(lpage)
    ls.flush()
    ls.check_invariants()
    assert ls.space_utilisation <= 1.0
