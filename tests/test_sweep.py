"""Tests for the parallel experiment engine (repro.harness.sweep)."""

import pytest

from repro.errors import ConfigError
from repro.harness.sweep import (
    ResultCache,
    SweepCell,
    SweepEngine,
    run_sweep,
    sim_cell,
    trace_desc,
)

#: A tiny zipf trace: cheap enough to run dozens of cells in tests.
TRACE = trace_desc("zipf", n_requests=1500, universe_pages=600, alpha=1.0,
                   read_ratio=0.3, seed=5, name="tiny")


def grid():
    return [
        sim_cell(policy, TRACE, cache_pages, seed=1)
        for cache_pages in (64, 128)
        for policy in ("wt", "leavo", "kdd")
    ]


class TestCells:
    def test_params_sorted_on_construction(self):
        a = SweepCell(kind="sim", policy="wt", trace=TRACE, cache_pages=64,
                      params=(("b", 2), ("a", 1)))
        b = SweepCell(kind="sim", policy="wt", trace=TRACE, cache_pages=64,
                      params=(("a", 1), ("b", 2)))
        assert a == b
        assert a.config_hash() == b.config_hash()

    def test_hash_distinguishes_configs(self):
        a = sim_cell("wt", TRACE, 64, seed=1)
        b = sim_cell("wt", TRACE, 128, seed=1)
        c = sim_cell("wt", TRACE, 64, seed=2)
        assert len({a.config_hash(), b.config_hash(), c.config_hash()}) == 3

    def test_derived_seed_stable_and_config_dependent(self):
        a = sim_cell("wt", TRACE, 64, seed=None)
        b = sim_cell("wt", TRACE, 64, seed=None)
        c = sim_cell("wt", TRACE, 128, seed=None)
        assert a.effective_seed() == b.effective_seed()
        assert a.effective_seed() != c.effective_seed()

    def test_explicit_seed_used_verbatim(self):
        assert sim_cell("wt", TRACE, 64, seed=7).effective_seed() == 7

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            SweepCell(kind="nope", policy="wt", trace=TRACE)

    def test_unknown_trace_kind_rejected(self):
        with pytest.raises(ConfigError):
            trace_desc("nope", name="x")


class TestDeterminism:
    def test_parallel_rows_identical_to_serial(self):
        serial = run_sweep(grid(), jobs=1)
        parallel = run_sweep(grid(), jobs=4)
        assert serial.rows == parallel.rows
        assert parallel.stats.executed == 6
        assert parallel.stats.jobs == 4

    def test_rows_ordered_by_cell_index(self):
        result = run_sweep(grid(), jobs=4)
        policies = [row["policy"] for row in result.rows]
        assert policies == ["wt", "leavo", "kdd"] * 2
        assert [row["cache_pages"] for row in result.rows] == [64] * 3 + [128] * 3

    def test_sim_rows_match_direct_simulate_policy(self):
        from repro.harness.runner import simulate_policy
        from repro.traces import zipf_workload

        trace = zipf_workload(1500, 600, alpha=1.0, read_ratio=0.3, seed=5,
                              name="tiny")
        direct = simulate_policy("wt", trace, 64, seed=1).row()
        (row,) = run_sweep([sim_cell("wt", TRACE, 64, seed=1)]).rows
        for key, value in direct.items():
            assert row[key] == value


class TestCache:
    def test_second_run_executes_zero_cells(self, tmp_path):
        first = run_sweep(grid(), jobs=1, cache=tmp_path)
        assert first.stats.executed == 6
        assert first.stats.cached == 0
        second = run_sweep(grid(), jobs=2, cache=tmp_path)
        assert second.stats.executed == 0
        assert second.stats.cached == 6
        assert second.rows == first.rows

    def test_force_recomputes_and_refreshes(self, tmp_path):
        run_sweep(grid(), cache=tmp_path)
        forced = run_sweep(grid(), cache=tmp_path, force=True)
        assert forced.stats.executed == 6
        assert forced.stats.cached == 0

    def test_cache_miss_on_changed_config(self, tmp_path):
        run_sweep(grid(), cache=tmp_path)
        shifted = [sim_cell("wt", TRACE, 64, seed=2)]
        result = run_sweep(shifted, cache=tmp_path)
        assert result.stats.executed == 1

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        cells = [sim_cell("wt", TRACE, 64, seed=1)]
        run_sweep(cells, cache=tmp_path)
        for path in ResultCache(tmp_path).root.glob("*.json"):
            path.write_text("{not json")
        result = run_sweep(cells, cache=tmp_path)
        assert result.stats.executed == 1

    def test_clear(self, tmp_path):
        run_sweep(grid(), cache=tmp_path)
        cache = ResultCache(tmp_path)
        assert len(cache) == 6
        assert cache.clear() == 6
        assert len(cache) == 0


class TestEngine:
    def test_duplicate_cells_run_once(self):
        cells = [sim_cell("wt", TRACE, 64, seed=1)] * 3
        result = run_sweep(cells)
        assert result.stats.executed == 1
        assert result.stats.deduped == 2
        assert result.rows[0] == result.rows[1] == result.rows[2]

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigError):
            SweepEngine(jobs=0)

    def test_progress_callback_sees_every_cell(self):
        ticks = []
        run_sweep(grid(), progress=ticks.append)
        assert [t.done for t in ticks] == list(range(1, 7))
        assert all(t.total == 6 for t in ticks)
        assert not any(t.from_cache for t in ticks)

    def test_progress_reports_cache_hits(self, tmp_path):
        run_sweep(grid(), cache=tmp_path)
        ticks = []
        run_sweep(grid(), cache=tmp_path, progress=ticks.append)
        assert all(t.from_cache for t in ticks)

    def test_stats_instrumentation(self):
        result = run_sweep(grid())
        stats = result.stats
        assert stats.total == 6
        assert stats.elapsed > 0
        assert stats.cells_per_sec > 0
        assert len(stats.cell_seconds) == 6
        assert 0.0 <= stats.worker_utilisation <= 1.0
        row = stats.row()
        for key in ("cells", "executed", "cached", "deduped", "jobs",
                    "elapsed_s", "cells_per_sec", "worker_utilisation"):
            assert key in row

    def test_replay_and_fio_kinds(self):
        replay = SweepCell(kind="replay", policy="wt", trace=TRACE,
                           cache_pages=64, seed=1,
                           params=(("max_requests", 200),))
        fio = SweepCell(kind="fio", policy="wt", cache_pages=256, seed=1,
                        params=(("total_requests", 200),
                                ("working_set_pages", 1000),
                                ("read_rate", 0.5), ("nthreads", 4)))
        stats_cell = SweepCell(kind="stats", trace=TRACE)
        rows = run_sweep([replay, fio, stats_cell], jobs=2).rows
        assert rows[0]["policy"] == "wt" and rows[0]["mean_ms"] >= 0
        assert rows[1]["read_rate"] == 0.5 and "ssd_write_pages" in rows[1]
        assert rows[2]["workload"] == "tiny"

    def test_worker_failure_propagates(self):
        bad = sim_cell("no-such-policy", TRACE, 64)
        with pytest.raises(ConfigError):
            run_sweep([bad], jobs=1)
        with pytest.raises(ConfigError):
            run_sweep([bad, sim_cell("wt", TRACE, 64)], jobs=2)
