"""Multi-tenant serving layer: composition, isolation, partitioning.

The load-bearing properties:

* composition is deterministic and order-free — every (tenant, epoch)
  cell re-derives its sha256 substream, so composing twice is
  byte-identical and a tenant's subsequence is independent of who else
  rides along;
* static partitioning gives *exact* isolation — a tenant behaves as if
  it ran its own trace alone on a cache of its quota size;
* dynamic reallocation beats the static split under diurnal churn;
* serve sweep rows are byte-identical for any jobs count;
* a million-request, thousand-tenant run keeps online metric state
  within the byte budget frozen at construction.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig, PartitionPlan, PartitionedCache
from repro.errors import ConfigError
from repro.harness.runner import build_policy
from repro.harness.servesweep import _make_raid, run_serve_cell, serve_cell
from repro.harness.sweep import SweepEngine
from repro.serve import (
    ServeDriver,
    TenantSpec,
    WorkloadComposer,
    jain_fairness,
    make_tenant_fleet,
    substream_seed,
)


def small_fleet(n=3, universe=512, **kwargs):
    kwargs.setdefault("base_iops", 20.0)
    return make_tenant_fleet(n, universe_pages=universe, **kwargs)


def collect(composer, **bounds):
    batches = list(composer.compose(**bounds))
    if not batches:
        return (np.empty(0), np.empty(0, np.int32),
                np.empty(0, np.uint64), np.empty(0, bool))
    return (np.concatenate([b.times for b in batches]),
            np.concatenate([b.tenant for b in batches]),
            np.concatenate([b.lba for b in batches]),
            np.concatenate([b.is_read for b in batches]))


class TestTenantSpecValidation:
    def test_zipf_alpha_must_be_positive(self):
        with pytest.raises(ConfigError, match="zipf_alpha"):
            TenantSpec(tenant_id="t0", universe_pages=64, zipf_alpha=0.0)

    def test_read_ratio_range(self):
        with pytest.raises(ConfigError, match="read_ratio"):
            TenantSpec(tenant_id="t0", universe_pages=64, read_ratio=1.5)

    def test_amplitude_range(self):
        with pytest.raises(ConfigError, match="diurnal_amplitude"):
            TenantSpec(tenant_id="t0", universe_pages=64,
                       diurnal_amplitude=1.0)

    def test_burst_factor_floor(self):
        with pytest.raises(ConfigError, match="burst_factor"):
            TenantSpec(tenant_id="t0", universe_pages=64, burst_factor=0.5)

    def test_universe_must_be_positive(self):
        with pytest.raises(ConfigError, match="universe_pages"):
            TenantSpec(tenant_id="t0", universe_pages=0)


class TestComposerValidation:
    def test_zero_tenants_rejected(self):
        with pytest.raises(ConfigError, match="tenant"):
            WorkloadComposer([], seed=0)

    def test_duplicate_tenant_ids_rejected(self):
        spec = TenantSpec(tenant_id="dup", universe_pages=64)
        with pytest.raises(ConfigError, match="dup"):
            WorkloadComposer([spec, spec], seed=0)

    def test_compose_needs_a_bound(self):
        composer = WorkloadComposer(small_fleet(), seed=0)
        with pytest.raises(ConfigError,
                           match="duration_s / max_requests"):
            list(composer.compose())

    def test_tenant_trace_duration_validated(self):
        composer = WorkloadComposer(small_fleet(), seed=0)
        with pytest.raises(ConfigError, match="duration_s"):
            composer.tenant_trace("t0000", 0.0)


class TestSubstreamSeeds:
    def test_distinct_per_tenant_and_composer_seed(self):
        seeds = {substream_seed(s, f"t{i:04d}")
                 for s in range(4) for i in range(64)}
        assert len(seeds) == 4 * 64

    def test_stable_value(self):
        assert substream_seed(0, "t0000") == substream_seed(0, "t0000")


class TestCompositionDeterminism:
    def test_compose_twice_is_byte_identical(self):
        fleet = small_fleet(diurnal_amplitude=0.5, diurnal_period_s=600.0,
                            burst_prob=0.1, burst_factor=3.0)
        a = collect(WorkloadComposer(fleet, seed=7), duration_s=300.0)
        b = collect(WorkloadComposer(fleet, seed=7), duration_s=300.0)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_batches_are_time_ordered(self):
        composer = WorkloadComposer(small_fleet(), seed=3)
        times, _, _, _ = collect(composer, duration_s=300.0)
        assert np.all(np.diff(times) >= 0.0)

    def test_max_requests_truncates_exactly(self):
        composer = WorkloadComposer(small_fleet(), seed=3)
        times, _, _, _ = collect(composer, max_requests=500)
        assert len(times) == 500

    def test_tenant_regions_disjoint_and_aligned(self):
        fleet = small_fleet(n=4, universe=100)
        composer = WorkloadComposer(fleet, seed=0)
        bases = [composer.tenant_base(s.tenant_id) for s in fleet]
        assert all(b % 64 == 0 for b in bases)
        _, tenants, lbas, _ = collect(composer, duration_s=120.0)
        for i in range(4):
            mine = lbas[tenants == i]
            assert np.all(mine >= bases[i])
            assert np.all(mine < bases[i] + 100)

    def test_tenant_trace_matches_composed_share(self):
        """A tenant's standalone trace is exactly its composed subset —
        the replayable-substream guarantee behind isolation."""
        fleet = small_fleet(diurnal_amplitude=0.4, diurnal_period_s=300.0)
        composer = WorkloadComposer(fleet, seed=11)
        times, tenants, lbas, reads = collect(composer, duration_s=240.0)
        for idx, spec in enumerate(fleet):
            trace = composer.tenant_trace(spec.tenant_id, 240.0)
            mask = tenants == idx
            assert np.array_equal(trace.records["time"], times[mask])
            assert np.array_equal(trace.records["lba"], lbas[mask])
            assert np.array_equal(trace.records["is_read"], reads[mask])

    def test_composition_is_order_free(self):
        """Dropping a tenant from the fleet leaves the others'
        subsequences untouched."""
        fleet = small_fleet(n=3)
        full = WorkloadComposer(fleet, seed=5)
        times, tenants, lbas, _ = collect(full, duration_s=180.0)
        solo = WorkloadComposer([fleet[1]], seed=5)
        st_, _, sl, _ = collect(solo, duration_s=180.0)
        mask = tenants == 1
        assert np.array_equal(st_, times[mask])
        # addresses differ only by the region base
        tid = fleet[1].tenant_id
        assert np.array_equal(
            sl - solo.tenant_base(tid), lbas[mask] - full.tenant_base(tid))


def run_partitioned(fleet, seed, cache_pages, duration_s, dynamic=False,
                    **plan_kwargs):
    composer = WorkloadComposer(fleet, seed=seed)
    plan = PartitionPlan.equal(len(fleet), dynamic=dynamic, **plan_kwargs)
    raid = _make_raid(composer.total_pages)
    policies = [
        build_policy("wt", CacheConfig(cache_pages=q, ways=16, seed=seed),
                     raid)
        for q in plan.quotas(cache_pages)
    ]
    cache = PartitionedCache(policies, plan, total_pages=cache_pages)
    driver = ServeDriver(composer, cache)
    return composer, cache, driver.run(duration_s=duration_s)


class TestStaticIsolation:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 2**16 - 1), n_tenants=st.integers(2, 4))
    def test_partitioned_tenant_equals_solo_run(self, seed, n_tenants):
        """Static partitioning is exact isolation: per-tenant hit ratio
        and SSD writes equal a solo run of that tenant's trace on a
        quota-sized cache."""
        fleet = small_fleet(n=n_tenants, base_iops=10.0,
                            diurnal_amplitude=0.3, diurnal_period_s=300.0)
        composer, cache, _ = run_partitioned(
            fleet, seed, cache_pages=256, duration_s=120.0)
        for idx, spec in enumerate(fleet):
            solo_raid = _make_raid(composer.total_pages)
            solo = build_policy(
                "wt",
                CacheConfig(cache_pages=cache.quotas[idx], ways=16,
                            seed=seed),
                solo_raid)
            solo.process_trace(
                composer.tenant_trace(spec.tenant_id, 120.0))
            part = cache.policies[idx].stats
            assert part.hit_ratio == solo.stats.hit_ratio
            assert part.ssd_writes == solo.stats.ssd_writes
            assert part.accesses == solo.stats.accesses


class TestDynamicPartitioning:
    def test_dynamic_beats_static_under_churn(self):
        """The churn acceptance criterion, at the bench drive shape."""
        rows = {}
        for dynamic in (False, True):
            cell = serve_cell(
                policy="wt", cache_pages=2048, n_tenants=32, dynamic=dynamic,
                seed=0, universe_pages=1024, base_iops=50.0,
                diurnal_amplitude=0.9, diurnal_period_s=600.0,
                max_requests=100_000, realloc_period=4000, min_fraction=0.01,
                ways=16)
            rows[dynamic] = run_serve_cell(cell)
        assert rows[True]["hit_ratio"] > rows[False]["hit_ratio"]
        assert rows[True]["realloc_passes"] > 0
        assert rows[False]["realloc_passes"] == 0
        # both plans saw the identical composed workload
        assert rows[True]["requests"] == rows[False]["requests"]

    def test_report_has_fairness_and_endurance_columns(self):
        fleet = small_fleet(n=2)
        _, _, report = run_partitioned(fleet, 0, cache_pages=256,
                                       duration_s=60.0)
        row = report.row()
        for key in ("fairness_jain", "min_tenant_hit_ratio",
                    "max_tenant_hit_ratio", "ssd_writes", "hit_ratio"):
            assert key in row
        assert 0.0 < row["fairness_jain"] <= 1.0
        per = report.tenant_rows()
        assert len(per) == 2
        assert all("ssd_writes" in r and "quota_pages" in r for r in per)


class TestJainFairness:
    def test_even_is_one(self):
        assert jain_fairness([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_winner_is_one_over_n(self):
        assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_zero_are_neutral(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0.0, 0.0]) == 1.0


class TestServeSweep:
    def _cells(self):
        return [
            serve_cell(policy="wt", cache_pages=512, n_tenants=4,
                       dynamic=dynamic, seed=0, universe_pages=512,
                       base_iops=20.0, max_requests=8000,
                       realloc_period=2000, min_fraction=0.05, ways=16,
                       label=f"{'dyn' if dynamic else 'stat'}")
            for dynamic in (False, True)
        ]

    def test_rows_byte_identical_across_jobs(self):
        serial = SweepEngine(jobs=1).run(self._cells())
        parallel = SweepEngine(jobs=2).run(self._cells())
        assert json.dumps(serial.rows, sort_keys=True) == \
            json.dumps(parallel.rows, sort_keys=True)

    def test_per_tenant_rows_ride_the_cell(self):
        cell = serve_cell(policy="wt", cache_pages=512, n_tenants=4,
                          seed=0, universe_pages=512, base_iops=20.0,
                          max_requests=4000, ways=16, tenant_rows=True)
        row = run_serve_cell(cell)
        assert len(row["per_tenant"]) == 4


class TestBoundedMetricState:
    def test_million_requests_thousand_tenants(self):
        """The scaling acceptance: 1M composed requests over 1000
        tenants, metrics-only, with the byte budget frozen up front."""
        fleet = make_tenant_fleet(1000, universe_pages=256, base_iops=2.0,
                                  diurnal_amplitude=0.8,
                                  diurnal_period_s=3600.0)
        composer = WorkloadComposer(fleet, seed=1)
        driver = ServeDriver(composer)  # no cache: composition + metrics
        report = driver.run(max_requests=1_000_000)
        metrics = driver.metrics
        assert int(metrics.accesses.sum()) == 1_000_000
        assert metrics.state_bytes() == metrics.budget_bytes
        assert metrics.state_bytes() < 32_768
        row = report.row()
        assert row["requests"] == 1_000_000
        assert row["state_bytes"] == metrics.budget_bytes
