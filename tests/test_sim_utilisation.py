"""Tests for device utilisation accounting and queueing sanity checks."""

import pytest

from repro.cache import CacheConfig
from repro.errors import ConfigError
from repro.harness import build_policy
from repro.raid import RAIDArray, RaidLevel
from repro.sim import FioConfig, TimedSystem, run_closed_loop


def make_system(policy="nossd", ndisks=5):
    raid = RAIDArray(RaidLevel.RAID5, ndisks=ndisks, chunk_pages=4,
                     pages_per_disk=1 << 16)
    return TimedSystem(build_policy(policy, CacheConfig(cache_pages=256), raid))


def test_utilisation_between_zero_and_one():
    sys_ = make_system()
    rep = run_closed_loop(
        sys_, FioConfig(total_requests=300, working_set_pages=2000,
                        nthreads=4, seed=1)
    )
    util = sys_.utilisation(rep.duration)
    assert set(util) == {f"disk{i}" for i in range(5)} | {"ssd"}
    for v in util.values():
        assert 0.0 <= v <= 1.0


def test_write_workload_loads_all_members():
    """RAID-5 rotates parity, so random writes busy every disk."""
    sys_ = make_system()
    rep = run_closed_loop(
        sys_, FioConfig(total_requests=500, working_set_pages=4000,
                        read_rate=0.0, nthreads=4, seed=2)
    )
    util = sys_.utilisation(rep.duration)
    disk_utils = [v for k, v in util.items() if k.startswith("disk")]
    assert min(disk_utils) > 0.2  # nobody idles

    # closed loop near saturation: the bottleneck device should be busy
    assert max(disk_utils) > 0.6


def test_ssd_nearly_idle_without_cache_hits():
    sys_ = make_system("nossd")
    rep = run_closed_loop(
        sys_, FioConfig(total_requests=200, working_set_pages=1000,
                        nthreads=2, seed=3)
    )
    assert sys_.utilisation(rep.duration)["ssd"] == 0.0


def test_cache_shifts_load_from_disks_to_ssd():
    cfg = FioConfig(total_requests=600, working_set_pages=800,
                    read_rate=0.9, nthreads=4, seed=4)
    nossd = make_system("nossd")
    rep_n = run_closed_loop(nossd, cfg)
    wt = make_system("wt")
    # big enough cache to hold the working set
    wt.policy.config.cache_pages  # (cache sized in make_system)
    rep_w = run_closed_loop(wt, cfg)
    disk_n = sum(v for k, v in nossd.utilisation(rep_n.duration).items()
                 if k.startswith("disk"))
    disk_w = sum(v for k, v in wt.utilisation(rep_w.duration).items()
                 if k.startswith("disk"))
    ssd_w = wt.utilisation(rep_w.duration)["ssd"]
    assert ssd_w > 0.0
    # per unit of work, disks carry less when reads hit the SSD; compare
    # normalised by achieved throughput
    assert disk_w / rep_w.iops < disk_n / rep_n.iops


def test_littles_law_holds_in_closed_loop():
    """N = X * R within tolerance: threads = iops * response time."""
    sys_ = make_system("nossd")
    nthreads = 8
    rep = run_closed_loop(
        sys_, FioConfig(total_requests=1500, working_set_pages=4000,
                        read_rate=0.5, nthreads=nthreads, seed=5)
    )
    n_estimated = rep.iops * rep.latency.mean
    assert n_estimated == pytest.approx(nthreads, rel=0.15)


def test_bad_duration_rejected():
    sys_ = make_system()
    with pytest.raises(ConfigError):
        sys_.utilisation(0.0)
