"""Extension bench: KDD over RAID-6 (the paper's design covers RAID-5/6).

RAID-6 small writes cost 3 reads + 3 writes (data, P, Q), so delaying
parity buys even more than on RAID-5: a write hit still costs one
member write.  This bench verifies the benefit *grows* with the number
of parity devices.
"""

import pytest
from conftest import BENCH_SCALE

from repro.harness.runner import make_raid_for_trace, simulate_policy
from repro.raid import RaidLevel
from repro.traces import make_workload


@pytest.fixture(scope="module")
def trace():
    return make_workload("Fin1", scale=BENCH_SCALE)


def member_ios(trace, level, ndisks, policy, benchmark=None):
    raid = make_raid_for_trace(trace, level=level, ndisks=ndisks)
    cache = int(trace.stats().unique_pages * 0.10)
    run = lambda: simulate_policy(policy, trace, cache, raid=raid, seed=1)
    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0) if benchmark else run()
    return result, raid.counters.total


def test_kdd_on_raid6(trace, benchmark):
    kdd6, kdd6_ios = member_ios(trace, RaidLevel.RAID6, 6, "kdd", benchmark)
    nossd6, nossd6_ios = member_ios(trace, RaidLevel.RAID6, 6, "nossd")
    benchmark.extra_info["kdd_member_ios"] = kdd6_ios
    benchmark.extra_info["nossd_member_ios"] = nossd6_ios
    # KDD must cut member I/O on RAID-6 as it does on RAID-5
    assert kdd6_ios < nossd6_ios


def test_raid6_benefit_exceeds_raid5(trace, benchmark):
    def run_both():
        _, k5 = member_ios(trace, RaidLevel.RAID5, 5, "kdd")
        _, n5 = member_ios(trace, RaidLevel.RAID5, 5, "nossd")
        _, k6 = member_ios(trace, RaidLevel.RAID6, 6, "kdd")
        _, n6 = member_ios(trace, RaidLevel.RAID6, 6, "nossd")
        return k5, n5, k6, n6

    k5, n5, k6, n6 = benchmark.pedantic(run_both, rounds=1, iterations=1,
                                        warmup_rounds=0)
    saving5 = 1 - k5 / n5
    saving6 = 1 - k6 / n6
    benchmark.extra_info["raid5_member_io_saving"] = round(saving5, 4)
    benchmark.extra_info["raid6_member_io_saving"] = round(saving6, 4)
    assert saving6 > saving5  # two parity devices -> bigger win


def test_kdd_parity_q_updates_deferred(trace, benchmark):
    raid = make_raid_for_trace(trace, level=RaidLevel.RAID6, ndisks=6)
    cache = int(trace.stats().unique_pages * 0.10)
    benchmark.pedantic(
        lambda: simulate_policy("kdd", trace, cache, raid=raid, seed=1),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    # after finish() (inside simulate) nothing is left stale
    assert not raid.stale_stripes
