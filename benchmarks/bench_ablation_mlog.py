"""Ablation: batched circular metadata log vs per-update persistence.

DESIGN.md decision 2: LeavO persists each metadata update individually,
KDD batches a page's worth through NVRAM.  This bench isolates the
metadata write overhead of the two protocols on the same access stream.
"""

import pytest
from conftest import BENCH_JOBS, BENCH_SCALE

from repro.harness.runner import simulate_policy
from repro.harness.sweep import run_sweep, sim_cell, workload_trace
from repro.traces import make_workload


@pytest.fixture(scope="module")
def trace():
    return make_workload("Hm0", scale=BENCH_SCALE)


def test_metadata_overhead_kdd_vs_leavo(trace, benchmark):
    cache = int(trace.stats().unique_pages * 0.10)
    desc = workload_trace("Hm0", BENCH_SCALE)
    cells = [sim_cell("kdd", desc, cache, seed=1),
             sim_cell("leavo", desc, cache, seed=1)]

    result = benchmark.pedantic(
        lambda: run_sweep(cells, jobs=BENCH_JOBS),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    kdd, leavo = result.rows
    benchmark.extra_info["kdd_meta_writes"] = kdd["meta_writes"]
    benchmark.extra_info["leavo_meta_writes"] = leavo["meta_writes"]
    benchmark.extra_info["kdd_meta_pct"] = round(100 * kdd["meta_fraction"], 2)
    # KDD's log batches ~341 entries per page; LeavO persists every update.
    assert kdd["meta_writes"] < leavo["meta_writes"] / 5
    # Figure 4's bound: metadata stays a small fraction of cache writes.
    assert kdd["meta_fraction"] < 0.05


@pytest.mark.parametrize("frac", [0.0039, 0.0098])
def test_partition_size_tradeoff(trace, benchmark, frac):
    """Smaller partitions GC more; both stay cheap (Figure 4)."""
    cache = int(trace.stats().unique_pages * 0.20)
    r = benchmark.pedantic(
        lambda: simulate_policy(
            "kdd", trace, cache, seed=1, meta_partition_frac=frac
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    benchmark.extra_info["meta_partition_frac"] = frac
    benchmark.extra_info["meta_pct"] = round(100 * r.meta_fraction, 3)
    benchmark.extra_info["mlog_gc_pages"] = r.extras["mlog_gc_pages"]
    assert r.meta_fraction < 0.05
