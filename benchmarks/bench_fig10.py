"""Bench: Figure 10 — average response time under the FIO zipf benchmark.

The closed-loop driver owns the thread-availability heap; all device
timing comes from the discrete-event engine (``repro.engine``).
"""

from repro.harness.figures import fig10


def test_fig10(run_figure):
    result = run_figure(
        fig10, total_requests=3000, working_set_pages=40_000, cache_pages=25_000
    )
    print()
    print(result.render())

    def mean_ms(policy, read_rate):
        (row,) = [
            r
            for r in result.rows
            if r["policy"] == policy and r["read_rate"] == read_rate
        ]
        return row["mean_ms"]

    for rate in (0.0, 0.25, 0.50, 0.75):
        kdd = mean_ms("kdd", rate)
        leavo = mean_ms("leavo", rate)
        wt = mean_ms("wt", rate)
        nossd = mean_ms("nossd", rate)
        # paper: KDD reduces response time by 42-43% vs Nossd and
        # 32-43% vs WT across read rates; KDD ~ LeavO throughout
        assert kdd < 0.75 * nossd, rate
        assert kdd < 0.85 * wt, rate
        assert abs(kdd - leavo) / leavo < 0.25, rate

    # WT/WA approach Nossd as the read rate grows (reads hit the SSD)
    assert mean_ms("wt", 0.75) < mean_ms("wt", 0.0)
