"""Bench: Figure 6 — SSD write traffic under the write-dominant traces.

This is the paper's headline figure: KDD cuts cache writes by up to
~38/58/68 % (Fin1) and ~46/68/79 % (Hm0) vs write-through at locality
50/25/12 %, and by up to ~73-80 % vs LeavO (a 5.1x lifetime gain).
"""

from conftest import BENCH_SCALE

from repro.harness.figures import fig6


def test_fig6(run_figure):
    result = run_figure(fig6, scale=BENCH_SCALE)
    print()
    print(result.render())

    def writes(policy, workload):
        return {
            r["cache_pages"]: r["ssd_write_pages"]
            for r in result.rows
            if r["policy"] == policy and r["workload"] == workload
        }

    for workload in ("Fin1", "Hm0"):
        wa = writes("wa", workload)
        wt = writes("wt", workload)
        leavo = writes("leavo", workload)
        for cache in wt:
            # ordering at every cache size: WA < KDD-12 < KDD-25 < KDD-50 < WT < LeavO
            k50 = writes("kdd-50", workload)[cache]
            k25 = writes("kdd-25", workload)[cache]
            k12 = writes("kdd-12", workload)[cache]
            assert wa[cache] < k12 <= k25 <= k50, (workload, cache)
            assert k50 < wt[cache] < leavo[cache], (workload, cache)
        # headline reductions at the largest cache size
        cache = max(wt)
        red_25_vs_wt = 1 - writes("kdd-25", workload)[cache] / wt[cache]
        red_12_vs_leavo = 1 - writes("kdd-12", workload)[cache] / leavo[cache]
        assert red_25_vs_wt > 0.30, (workload, red_25_vs_wt)
        assert red_12_vs_leavo > 0.50, (workload, red_12_vs_leavo)
