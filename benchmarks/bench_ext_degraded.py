"""Extension bench: response time while the array resynchronises.

Section II-B's availability argument: after an SSD-cache failure the
stale-parity stripes must be re-synchronised, and "user requests will be
adversely affected by the re-synchronization of RAID storage".  KDD's
smaller resync window (it can repair parity any time from cache state,
and its failure mode needs no full-array scrub) keeps the interference
short.  This bench measures foreground latency with and without
resync traffic sharing the disks.

The resync batches ride ``TimedSystem.inject_disk_ops``, which the
engine schedules at background priority (tag ``inject``) — under the
default FCFS discipline that is pure contention, exactly as before the
engine refactor; a ``PriorityFCFS`` discipline would throttle it.
"""

import heapq

import numpy as np

from repro.cache import CacheConfig
from repro.harness import build_policy
from repro.raid import DiskOp, RAIDArray, RaidLevel
from repro.sim import TimedSystem


def run_loop_with_interference(policy_name, interference_every, seed=0,
                               n_requests=1500, nthreads=8):
    """Closed loop; every ``interference_every`` requests, one stripe's
    worth of resync I/O (reads on all members + a parity write) is
    injected at the current time.  ``interference_every=None`` disables."""
    raid = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=16,
                     pages_per_disk=1 << 16)
    system = TimedSystem(build_policy(policy_name,
                                      CacheConfig(cache_pages=8192, seed=seed),
                                      raid))
    rng = np.random.default_rng(seed)
    pages = rng.integers(0, 40_000, size=n_requests)
    is_read = rng.random(n_requests) < 0.5

    threads = [(0.0, tid) for tid in range(nthreads)]
    heapq.heapify(threads)
    stripe = 0
    for i in range(n_requests):
        available, tid = heapq.heappop(threads)
        done = system.submit(int(pages[i]), 1, bool(is_read[i]), available)
        heapq.heappush(threads, (done, tid))
        if interference_every and i % interference_every == 0:
            # one stripe resync: sequential chunk reads on every member,
            # parity chunk write
            base = (stripe % 1024) * 16
            ops = [DiskOp(d, base, 16, True) for d in range(5)]
            ops.append(DiskOp(4 - stripe % 5, base, 16, False))
            system.inject_disk_ops(ops, available)
            stripe += 1
    return system.recorder.summary()


def test_resync_interference_hurts_latency(benchmark):
    def run_pair():
        clean = run_loop_with_interference("wt", None)
        degraded = run_loop_with_interference("wt", 10)
        return clean, degraded

    clean, degraded = benchmark.pedantic(run_pair, rounds=1, iterations=1,
                                         warmup_rounds=0)
    benchmark.extra_info["clean_mean_ms"] = round(clean.mean * 1e3, 2)
    benchmark.extra_info["resync_mean_ms"] = round(degraded.mean * 1e3, 2)
    assert degraded.mean > clean.mean * 1.1


def test_kdd_needs_less_resync_than_wholearray_scrub(benchmark):
    """KDD only resyncs the stripes that were actually stale; an SSD-less
    recovery (or LeavO after cache death) scrubs proportionally more.
    Model: KDD injects resync for 10% of intervals, the scrub for all."""
    def run_pair():
        kdd_like = run_loop_with_interference("kdd", 100)
        scrub = run_loop_with_interference("kdd", 10)
        return kdd_like, scrub

    kdd_like, scrub = benchmark.pedantic(run_pair, rounds=1, iterations=1,
                                         warmup_rounds=0)
    benchmark.extra_info["light_resync_ms"] = round(kdd_like.mean * 1e3, 2)
    benchmark.extra_info["heavy_resync_ms"] = round(scrub.mean * 1e3, 2)
    assert kdd_like.mean < scrub.mean
