"""Shared fixtures for the benchmark harness.

Every paper table/figure has one bench module.  Benchmarks run the
corresponding experiment driver once per round at a reduced scale
(shapes are scale-invariant; see DESIGN.md) and attach the regenerated
rows to the benchmark's ``extra_info`` so ``--benchmark-only`` output
doubles as the reproduction record.
"""

from __future__ import annotations

import pytest

#: Scale used by trace-driven benches; small enough for quick rounds,
#: large enough that cache-size sweeps stay meaningful.
BENCH_SCALE = 0.004


@pytest.fixture
def run_figure(benchmark):
    """Run a figure driver exactly once under the benchmark clock."""

    def _run(fn, **kwargs):
        result = benchmark.pedantic(
            lambda: fn(**kwargs), rounds=1, iterations=1, warmup_rounds=0
        )
        benchmark.extra_info["figure"] = result.figure_id
        benchmark.extra_info["rows"] = len(result.rows)
        return result

    return _run
