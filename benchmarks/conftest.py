"""Shared fixtures for the benchmark harness.

Every paper table/figure has one bench module.  Benchmarks run the
corresponding experiment driver once per round at a reduced scale
(shapes are scale-invariant; see DESIGN.md) and attach the regenerated
rows to the benchmark's ``extra_info`` so ``--benchmark-only`` output
doubles as the reproduction record.

Grids are submitted through the sweep engine
(:mod:`repro.harness.sweep`); set ``BENCH_JOBS=N`` to fan cells out to
``N`` worker processes — rows are identical for any job count, so the
shape assertions are unaffected.
"""

from __future__ import annotations

import inspect
import os

import pytest

from repro.errors import ConfigError
from repro.harness.sweep import SweepEngine

#: Scale used by trace-driven benches; small enough for quick rounds,
#: large enough that cache-size sweeps stay meaningful.
BENCH_SCALE = 0.004


def _parse_jobs(raw: str) -> int:
    """Parse the BENCH_JOBS knob, rejecting junk with a ConfigError.

    A malformed value is a configuration mistake, so it must surface as
    :class:`ConfigError` naming the offending value — not as a bare
    ``ValueError`` traceback at collection time.
    """
    try:
        jobs = int(raw)
    except ValueError:
        raise ConfigError(
            f"BENCH_JOBS must be an integer number of worker processes, "
            f"got {raw!r}"
        ) from None
    if jobs < 1:
        raise ConfigError(f"BENCH_JOBS must be >= 1, got {raw!r}")
    return jobs


#: Worker processes for sweep grids (results are job-count invariant).
BENCH_JOBS = _parse_jobs(os.environ.get("BENCH_JOBS", "1"))


@pytest.fixture
def engine():
    """A sweep engine configured from the BENCH_JOBS environment knob."""
    return SweepEngine(jobs=BENCH_JOBS)


@pytest.fixture
def run_figure(benchmark, engine):
    """Run a figure driver exactly once under the benchmark clock."""

    def _run(fn, **kwargs):
        if "engine" in inspect.signature(fn).parameters:
            kwargs.setdefault("engine", engine)
        result = benchmark.pedantic(
            lambda: fn(**kwargs), rounds=1, iterations=1, warmup_rounds=0
        )
        benchmark.extra_info["figure"] = result.figure_id
        benchmark.extra_info["rows"] = len(result.rows)
        if result.timing:
            benchmark.extra_info["sweep"] = result.timing
        return result

    return _run
