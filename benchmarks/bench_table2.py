"""Bench: Table II — qualitative comparison of the caching policies."""

from repro.harness.figures import table2


def test_table2(run_figure):
    result = run_figure(
        table2, total_requests=2500, working_set_pages=30_000, cache_pages=18_000
    )
    print()
    print(result.render())
    cells = {r["policy"]: r for r in result.rows}
    # the paper's Table II verbatim:
    assert cells["wt"]["io_latency"] == "High"
    assert cells["wa"]["io_latency"] == "High"
    assert cells["leavo"]["io_latency"] == "Low"
    assert cells["kdd"]["io_latency"] == "Low"
    assert cells["wt"]["ssd_endurance"] == "Bad"
    assert cells["wa"]["ssd_endurance"] == "Good"
    assert cells["leavo"]["ssd_endurance"] == "Bad"
    assert cells["kdd"]["ssd_endurance"] == "Good"
