"""Bench: Figure 11 — SSD write traffic under the FIO zipf benchmark."""

from repro.harness.figures import fig11


def test_fig11(run_figure):
    result = run_figure(
        fig11, total_requests=3000, working_set_pages=40_000, cache_pages=25_000
    )
    print()
    print(result.render())

    def writes(policy, read_rate):
        (row,) = [
            r
            for r in result.rows
            if r["policy"] == policy and r["read_rate"] == read_rate
        ]
        return row["ssd_write_pages"]

    for rate in (0.0, 0.25, 0.50, 0.75):
        wa, wt = writes("wa", rate), writes("wt", rate)
        leavo, kdd = writes("leavo", rate), writes("kdd", rate)
        # ordering: WA least; KDD < WT < LeavO (paper: KDD -19..44% vs WT,
        # -23..46% vs LeavO)
        assert wa <= kdd, rate
        assert kdd < wt <= leavo * 1.05, rate

    # WA's writes grow with the read rate (read fills) and close in on KDD
    assert writes("wa", 0.75) > writes("wa", 0.0)
    gap_low = writes("kdd", 0.0) - writes("wa", 0.0)
    gap_high = writes("kdd", 0.75) - writes("wa", 0.75)
    assert gap_high < gap_low
