"""Bench: Figure 7 — hit ratios under the read-dominant traces."""

from conftest import BENCH_SCALE

from repro.harness.figures import fig7


def test_fig7(run_figure):
    result = run_figure(fig7, scale=BENCH_SCALE)
    print()
    print(result.render())

    def hits(policy, workload):
        return {
            r["cache_pages"]: r["hit_ratio"]
            for r in result.rows
            if r["policy"] == policy and r["workload"] == workload
        }

    # Fin2: KDD sits between WT and LeavO, and the gap narrows as the
    # cache grows (Section IV-A3).
    wt, leavo, kdd = hits("wt", "Fin2"), hits("leavo", "Fin2"), hits("kdd-25", "Fin2")
    caches = sorted(wt)
    for cache in caches:
        assert kdd[cache] >= leavo[cache] - 0.03, cache
    gap_small = wt[caches[0]] - leavo[caches[0]]
    gap_large = wt[caches[-1]] - leavo[caches[-1]]
    assert gap_large <= gap_small + 0.02

    # Web0 with a small cache: KDD can beat WT because old/delta pages
    # pin the write-hot working set past plain LRU.
    wt_web = hits("wt", "Web0")
    kdd_web = hits("kdd-25", "Web0")
    smallest = min(wt_web)
    assert kdd_web[smallest] > wt_web[smallest] - 0.02
