"""Extension bench: LARC admission on top of KDD (§V-C complementarity).

The paper notes selective-admission schemes "can be deployed in KDD to
further reduce the amount of writes to SSD".  This bench quantifies the
combination on a fill-heavy workload, submitting each (policy x
admission) grid through the sweep engine.
"""

import pytest

from conftest import BENCH_JOBS

from repro.harness.sweep import run_sweep, sim_cell, trace_desc

# low-skew, read-heavy: lots of one-hit wonders for LARC to filter
TRACE = trace_desc("zipf", n_requests=40_000, universe_pages=20_000,
                   alpha=0.7, read_ratio=0.7, seed=8, name="scan-heavy")


@pytest.mark.parametrize("policy", ["wt", "kdd"])
def test_larc_reduces_ssd_writes(policy, benchmark):
    cells = [
        sim_cell(policy, TRACE, cache_pages=1024, seed=1),
        sim_cell(policy, TRACE, cache_pages=1024, seed=1, admission="larc"),
    ]
    result = benchmark.pedantic(
        lambda: run_sweep(cells, jobs=BENCH_JOBS),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    plain, larc = result.rows
    benchmark.extra_info["plain_ssd_writes"] = plain["ssd_write_pages"]
    benchmark.extra_info["larc_ssd_writes"] = larc["ssd_write_pages"]
    benchmark.extra_info["plain_hit"] = round(plain["hit_ratio"], 4)
    benchmark.extra_info["larc_hit"] = round(larc["hit_ratio"], 4)
    # LARC cuts allocation writes substantially on scan-heavy streams
    assert larc["ssd_write_pages"] < 0.8 * plain["ssd_write_pages"]
    # without giving up much hit ratio
    assert larc["hit_ratio"] > plain["hit_ratio"] - 0.10


def test_larc_plus_kdd_compounds(benchmark):
    cells = [
        sim_cell("wt", TRACE, cache_pages=1024, seed=1),
        sim_cell("kdd", TRACE, cache_pages=1024, seed=1, admission="larc"),
    ]
    result = benchmark.pedantic(
        lambda: run_sweep(cells, jobs=BENCH_JOBS),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    wt, combo = result.rows
    benchmark.extra_info["wt_ssd_writes"] = wt["ssd_write_pages"]
    benchmark.extra_info["kdd_larc_ssd_writes"] = combo["ssd_write_pages"]
    # the combination beats either technique alone vs the WT baseline
    assert combo["ssd_write_pages"] < 0.6 * wt["ssd_write_pages"]
