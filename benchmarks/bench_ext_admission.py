"""Extension bench: LARC admission on top of KDD (§V-C complementarity).

The paper notes selective-admission schemes "can be deployed in KDD to
further reduce the amount of writes to SSD".  This bench quantifies the
combination on a fill-heavy workload.
"""

import pytest

from repro.harness.runner import simulate_policy
from repro.traces import zipf_workload


@pytest.fixture(scope="module")
def trace():
    # low-skew, read-heavy: lots of one-hit wonders for LARC to filter
    return zipf_workload(40_000, 20_000, alpha=0.7, read_ratio=0.7, seed=8,
                         name="scan-heavy")


@pytest.mark.parametrize("policy", ["wt", "kdd"])
def test_larc_reduces_ssd_writes(trace, policy, benchmark):
    def run_both():
        plain = simulate_policy(policy, trace, cache_pages=1024, seed=1)
        larc = simulate_policy(policy, trace, cache_pages=1024, seed=1,
                               admission="larc")
        return plain, larc

    plain, larc = benchmark.pedantic(run_both, rounds=1, iterations=1,
                                     warmup_rounds=0)
    benchmark.extra_info["plain_ssd_writes"] = plain.ssd_write_pages
    benchmark.extra_info["larc_ssd_writes"] = larc.ssd_write_pages
    benchmark.extra_info["plain_hit"] = round(plain.hit_ratio, 4)
    benchmark.extra_info["larc_hit"] = round(larc.hit_ratio, 4)
    # LARC cuts allocation writes substantially on scan-heavy streams
    assert larc.ssd_write_pages < 0.8 * plain.ssd_write_pages
    # without giving up much hit ratio
    assert larc.hit_ratio > plain.hit_ratio - 0.10


def test_larc_plus_kdd_compounds(trace, benchmark):
    def run():
        wt = simulate_policy("wt", trace, cache_pages=1024, seed=1)
        combo = simulate_policy("kdd", trace, cache_pages=1024, seed=1,
                                admission="larc")
        return wt, combo

    wt, combo = benchmark.pedantic(run, rounds=1, iterations=1,
                                   warmup_rounds=0)
    benchmark.extra_info["wt_ssd_writes"] = wt.ssd_write_pages
    benchmark.extra_info["kdd_larc_ssd_writes"] = combo.ssd_write_pages
    # the combination beats either technique alone vs the WT baseline
    assert combo.ssd_write_pages < 0.6 * wt.ssd_write_pages
