"""Bench: Figure 8 — SSD write traffic under the read-dominant traces."""

from conftest import BENCH_SCALE

from repro.harness.figures import fig8


def test_fig8(run_figure):
    result = run_figure(fig8, scale=BENCH_SCALE)
    print()
    print(result.render())

    def writes(policy, workload):
        return {
            r["cache_pages"]: r["ssd_write_pages"]
            for r in result.rows
            if r["policy"] == policy and r["workload"] == workload
        }

    for workload in ("Fin2", "Web0"):
        wt = writes("wt", workload)
        leavo = writes("leavo", workload)
        kdd = writes("kdd-25", workload)
        for cache in wt:
            # the paper: "the improvement under read-dominant workloads is
            # smaller ... especially when the cache size is small" — at the
            # smallest caches KDD can sit within a few percent of WT, so
            # allow tolerance there and require strict wins at larger sizes
            assert kdd[cache] < wt[cache] * 1.03, (workload, cache)
            assert wt[cache] < leavo[cache], (workload, cache)
        cache = max(wt)
        assert kdd[cache] < wt[cache]
        # reductions are smaller than under write-dominant traces because
        # read fills dominate and KDD cannot reduce those; still >10%
        assert 1 - kdd[cache] / wt[cache] > 0.10

    # the WA-to-KDD write-traffic gap narrows under read-dominant traces
    # (paper: at the largest Fin2 caches KDD-12 can even beat WA)
    wa = writes("wa", "Fin2")
    k12 = writes("kdd-12", "Fin2")
    big = max(wa)
    small = min(wa)
    assert k12[big] - wa[big] < k12[small] - wa[small]
