"""Ablation: dynamic DAZ/DEZ zoning vs fixed partitions & DEZ placement.

DESIGN.md decision 1/4: the paper argues fixed DAZ/DEZ partitions are
hard to size (Section III-B) and that DEZ pages should spread across
the sets holding the fewest of them.  We compare KDD's dynamic zoning
against fixed splits and against random DEZ placement.
"""

import pytest
from conftest import BENCH_SCALE

from repro.harness.runner import simulate_policy
from repro.traces import make_workload


@pytest.fixture(scope="module")
def trace():
    return make_workload("Fin1", scale=BENCH_SCALE)


def run(trace, benchmark, **policy_kwargs):
    cache = int(trace.stats().unique_pages * 0.10)
    return benchmark.pedantic(
        lambda: simulate_policy(
            "kdd", trace, cache, seed=1, policy_kwargs=policy_kwargs
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )


def test_dynamic_zoning(trace, benchmark):
    r = run(trace, benchmark)
    benchmark.extra_info["hit_ratio"] = round(r.hit_ratio, 4)
    benchmark.extra_info["ssd_writes"] = r.ssd_write_pages
    assert r.hit_ratio > 0


def test_fixed_partition_small_dez(trace, benchmark):
    """A DEZ fixed at 5% of the cache throttles delta retention."""
    r_fixed = run(trace, benchmark, fixed_dez_fraction=0.05)
    r_dyn = simulate_policy(
        "kdd", trace, int(trace.stats().unique_pages * 0.10), seed=1
    )
    benchmark.extra_info["hit_fixed"] = round(r_fixed.hit_ratio, 4)
    benchmark.extra_info["hit_dynamic"] = round(r_dyn.hit_ratio, 4)
    # dynamic zoning should never be clearly worse than a badly-sized
    # fixed split on either headline metric
    assert r_dyn.hit_ratio >= r_fixed.hit_ratio - 0.02
    assert r_dyn.ssd_write_pages <= r_fixed.ssd_write_pages * 1.10


def test_fixed_partition_large_dez(trace, benchmark):
    """A DEZ fixed at 40% wastes space that DAZ needs for hit ratio."""
    r_fixed = run(trace, benchmark, fixed_dez_fraction=0.40)
    r_dyn = simulate_policy(
        "kdd", trace, int(trace.stats().unique_pages * 0.10), seed=1
    )
    benchmark.extra_info["hit_fixed"] = round(r_fixed.hit_ratio, 4)
    benchmark.extra_info["hit_dynamic"] = round(r_dyn.hit_ratio, 4)
    assert r_dyn.hit_ratio >= r_fixed.hit_ratio - 0.02


def test_random_dez_placement(trace, benchmark):
    """Least-loaded DEZ placement vs random placement (paper's choice)."""
    r_rand = run(trace, benchmark, dez_random_placement=True)
    r_dyn = simulate_policy(
        "kdd", trace, int(trace.stats().unique_pages * 0.10), seed=1
    )
    benchmark.extra_info["hit_random"] = round(r_rand.hit_ratio, 4)
    benchmark.extra_info["hit_least_loaded"] = round(r_dyn.hit_ratio, 4)
    # random placement concentrates DEZ pressure on unlucky sets; the
    # least-loaded rule should match or beat it
    assert r_dyn.hit_ratio >= r_rand.hit_ratio - 0.02
