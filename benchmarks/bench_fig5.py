"""Bench: Figure 5 — hit ratios under the write-dominant traces."""

from conftest import BENCH_SCALE

from repro.harness.figures import fig5


def test_fig5(run_figure):
    result = run_figure(fig5, scale=BENCH_SCALE)
    print()
    print(result.render())
    series = result.series(x="cache_pages", y="hit_ratio", key="policy")

    def mean_hit(policy):
        return sum(y for _, y in series[policy]) / len(series[policy])

    # Paper's ordering: WT has the best hit ratio (one copy per page);
    # KDD beats LeavO at every locality level; stronger locality helps KDD.
    assert mean_hit("wt") >= mean_hit("kdd-12") - 0.02
    assert mean_hit("kdd-12") >= mean_hit("kdd-25") - 0.02
    assert mean_hit("kdd-25") >= mean_hit("kdd-50") - 0.02
    assert mean_hit("kdd-25") > mean_hit("leavo") - 0.02
    # hit ratios grow with cache size for every policy
    for points in series.values():
        assert points[-1][1] >= points[0][1] - 0.02
