"""Bench: regenerate Table I (workload characteristics)."""

from conftest import BENCH_SCALE

from repro.harness.figures import table1


def test_table1(run_figure):
    result = run_figure(table1, scale=BENCH_SCALE)
    print()
    print(result.render())
    # shape assertions: the scaled stats must match the paper's ratios
    by_name = {r["workload"]: r for r in result.rows}
    assert by_name["Fin1"]["read_ratio"] < 0.25          # write dominant
    assert by_name["Hm0"]["read_ratio"] < 0.40           # write dominant
    assert by_name["Fin2"]["read_ratio"] > 0.75          # read dominant
    assert by_name["Web0"]["read_ratio"] > 0.55          # read dominant
    for r in by_name.values():
        assert abs(r["read_ratio"] - r["paper_read_ratio"]) < 0.03
