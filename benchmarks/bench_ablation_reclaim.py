"""Ablation: simple reclamation vs merge-and-keep (Section III-D).

The paper considers two ways to reclaim old/delta pages after a parity
repair: (1) merge old+delta into the latest data and keep it cached as
clean, or (2) simply drop the old page.  It picks (2) because victims
are usually cold and the merge costs extra cache writes.  This bench
measures both on the same stream.
"""

import pytest
from conftest import BENCH_SCALE

from repro.harness.runner import simulate_policy
from repro.traces import make_workload


@pytest.fixture(scope="module")
def trace():
    return make_workload("Fin1", scale=BENCH_SCALE)


def test_reclaim_simple_vs_merge(trace, benchmark):
    cache = int(trace.stats().unique_pages * 0.10)

    def run_both():
        simple = simulate_policy("kdd", trace, cache, seed=1)
        merge = simulate_policy(
            "kdd", trace, cache, seed=1, policy_kwargs={"reclaim_merge": True}
        )
        return simple, merge

    simple, merge = benchmark.pedantic(run_both, rounds=1, iterations=1,
                                       warmup_rounds=0)
    benchmark.extra_info["simple_ssd_writes"] = simple.ssd_write_pages
    benchmark.extra_info["merge_ssd_writes"] = merge.ssd_write_pages
    benchmark.extra_info["simple_hit"] = round(simple.hit_ratio, 4)
    benchmark.extra_info["merge_hit"] = round(merge.hit_ratio, 4)
    # the merge scheme always costs extra cache writes...
    assert merge.ssd_write_pages > simple.ssd_write_pages
    # ...for at best a marginal hit-ratio benefit (the paper's argument)
    assert merge.hit_ratio - simple.hit_ratio < 0.10
