"""Bench: Figure 4 — metadata partition size vs metadata I/O share."""

from conftest import BENCH_SCALE

from repro.harness.figures import fig4


def test_fig4(run_figure):
    result = run_figure(fig4, scale=BENCH_SCALE * 3)
    print()
    print(result.render())
    # Paper: at 0.59% partition size, metadata I/Os stay under ~1.8% of
    # total cache writes for every workload.
    at_059 = [r for r in result.rows if r["meta_partition_pct"] == 0.59]
    assert at_059
    for r in at_059:
        assert r["meta_io_pct"] < 2.5, r
    # Larger partitions never cost more metadata I/O than smaller ones.
    for wl in {r["workload"] for r in result.rows}:
        series = sorted(
            (r["meta_partition_pct"], r["meta_io_pct"])
            for r in result.rows
            if r["workload"] == wl
        )
        ratios = [v for _, v in series]
        assert ratios[-1] <= ratios[0] + 0.25, (wl, series)
