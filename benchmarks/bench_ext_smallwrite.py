"""Extension bench: KDD vs the pre-SSD small-write mitigations (§V-A).

Compares the random member I/O of plain RAID-5 read-modify-write,
Parity Logging, AFRAID, and KDD on the same random-write stream, and
records where each scheme pays: parity logging in sequential log and
reintegration traffic, AFRAID in a window of vulnerability, KDD in SSD
cache writes.
"""

import pytest

from repro.cache import CacheConfig
from repro.core import KDD
from repro.raid import (
    AfraidRaid,
    ParityLoggingRaid,
    RAIDArray,
    RaidLevel,
)
from repro.traces import zipf_workload


def r5():
    return RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=16,
                     pages_per_disk=1 << 15)


@pytest.fixture(scope="module")
def writes():
    trace = zipf_workload(10_000, 4000, alpha=1.0, read_ratio=0.0, seed=6)
    return [int(lba) for lba in trace.records["lba"]]


def test_logstructured_full_stripe_writes(writes, benchmark):
    """Dynamic striping: zero pre-reads, amortised member writes, but
    cleaning overhead appears as utilisation grows."""
    from repro.raid import LogStructuredRaid

    def run():
        ls = LogStructuredRaid(
            RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=16,
                      pages_per_disk=1 << 15),
            reserve_stripes=16,
        )
        for lba in writes:
            ls.write(lba % ls.exported_pages)
        ls.flush()
        return ls

    ls = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    rmw = r5()
    for lba in writes:
        rmw.write(lba)
    benchmark.extra_info["lfs_member_ios"] = ls.array.counters.total
    benchmark.extra_info["lfs_waf"] = round(ls.write_amplification, 3)
    benchmark.extra_info["rmw_member_ios"] = rmw.counters.total
    # full-stripe logging needs a fraction of rmw's member I/O
    assert ls.array.counters.total < rmw.counters.total / 2


def test_small_write_alternatives(writes, benchmark):
    def run_all():
        rmw = r5()
        for lba in writes:
            rmw.write(lba)

        pl = ParityLoggingRaid(r5(), log_pages=4096, nvram_pages=64)
        for lba in writes:
            pl.write(lba)
        pl.flush()

        af = AfraidRaid(r5(), max_unredundant_stripes=256)
        max_window = 0
        for lba in writes:
            af.write(lba)
            max_window = max(max_window, af.window_of_vulnerability)
        af.flush()

        kdd_raid = r5()
        kdd = KDD(CacheConfig(cache_pages=2048, ways=64, seed=1), kdd_raid)
        for lba in writes:
            kdd.write(lba)
        kdd.finish()
        return rmw, pl, af, max_window, kdd, kdd_raid

    rmw, pl, af, max_window, kdd, kdd_raid = benchmark.pedantic(
        run_all, rounds=1, iterations=1, warmup_rounds=0
    )

    n = len(writes)
    rmw_ios = rmw.counters.total
    pl_random = pl.counters.data_reads + pl.counters.data_writes
    benchmark.extra_info["rmw_member_ios"] = rmw_ios
    benchmark.extra_info["pl_random_ios"] = pl_random
    benchmark.extra_info["pl_seq_ios"] = pl.counters.log_writes + pl.counters.reintegration_ios
    benchmark.extra_info["afraid_max_window_stripes"] = max_window
    benchmark.extra_info["kdd_member_ios"] = kdd_raid.counters.total
    benchmark.extra_info["kdd_ssd_writes"] = kdd.stats.ssd_writes

    # plain rmw pays ~4 member I/Os per write
    assert rmw_ios == pytest.approx(4 * n, rel=0.05)
    # parity logging halves the random I/O
    assert pl_random == 2 * n
    # AFRAID leaves stripes unprotected between repairs; KDD's stripes are
    # always repairable from SSD state (finish() clears them all)
    assert max_window > 0
    assert not kdd_raid.stale_stripes
    # KDD's write-hit path beats rmw on member traffic
    assert kdd_raid.counters.total < rmw_ios
