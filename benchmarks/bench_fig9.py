"""Bench: Figure 9 — average response time, open-loop trace replay.

Runs on the discrete-event engine (``repro.engine``) through the
``replay`` sweep cells; reported IOPS covers queue drain past the last
arrival (the open-loop duration fix).
"""

from repro.harness.figures import fig9


def test_fig9(run_figure):
    result = run_figure(fig9, scale=0.002, max_requests=6000)
    print()
    print(result.render())

    def mean_ms(policy, workload):
        (row,) = [
            r
            for r in result.rows
            if r["policy"] == policy and r["workload"] == workload
        ]
        return row["mean_ms"]

    for workload in ("Fin1", "Fin2", "Hm0", "Web0"):
        nossd = mean_ms("nossd", workload)
        kdd = mean_ms("kdd", workload)
        leavo = mean_ms("leavo", workload)
        wt = mean_ms("wt", workload)
        # KDD beats the no-cache baseline and WT everywhere (paper:
        # 28-61% reduction vs Nossd)
        assert kdd < nossd, workload
        assert kdd < wt, workload
        # KDD ~ LeavO: delta processing is not a bottleneck
        assert kdd < 1.35 * leavo, workload

    # WT/WA beat Nossd clearly only on the read-heavy Fin2
    assert mean_ms("wt", "Fin2") < 0.9 * mean_ms("nossd", "Fin2")
