"""Extension bench: the reliability-vs-cost landscape (§V-B / §V-C).

Puts KDD next to the other ways of making an SSD cache safe or durable:

* mirrored write-back (SRC / cache-optimised RAID): RPO=0 via a second
  SSD, 2x dirty-write wear;
* deduplicating write-through (CacheDedup): endurance via content
  dedup, write-through latency;
* KDD: RPO=0 and endurance with one SSD, one member write per hit.

The bench records cache write traffic and RAID member I/O per scheme
on the same stream — the quantitative form of the paper's Table II
argument that only KDD lands in the low-latency/good-endurance corner
without extra hardware.
"""

import pytest

from repro.harness.runner import simulate_policy
from repro.traces import zipf_workload


@pytest.fixture(scope="module")
def trace():
    return zipf_workload(20_000, 4000, alpha=1.0, read_ratio=0.3, seed=10,
                         name="mixed")


def test_reliability_cost_landscape(trace, benchmark):
    def run_all():
        return {
            name: simulate_policy(name, trace, cache_pages=1024, seed=1)
            for name in ("wt", "mwb", "dedup-wt", "kdd")
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1,
                                 warmup_rounds=0)
    for name, r in results.items():
        benchmark.extra_info[f"{name}_ssd_writes"] = r.ssd_write_pages
        benchmark.extra_info[f"{name}_member_ios"] = r.raid.total

    # the mirrored cache writes the most flash (dirty pages twice)
    assert results["mwb"].ssd_write_pages > results["wt"].ssd_write_pages
    # dedup cuts flash writes below plain WT without touching the RAID path
    assert results["dedup-wt"].ssd_write_pages < results["wt"].ssd_write_pages
    assert results["dedup-wt"].raid.total == pytest.approx(
        results["wt"].raid.total, rel=0.01
    )
    # KDD cuts BOTH flash writes and RAID member traffic
    assert results["kdd"].ssd_write_pages < results["wt"].ssd_write_pages
    assert results["kdd"].raid.total < results["wt"].raid.total
    # and uses less flash than the mirrored design by a wide margin
    assert results["kdd"].ssd_write_pages < 0.5 * results["mwb"].ssd_write_pages
