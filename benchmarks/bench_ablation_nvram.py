"""Ablation: NVRAM staging buffer size (DESIGN.md decision 5).

The staging buffer is where deltas coalesce before being packed into a
DEZ page.  Bigger buffers pack more (and catch more re-writes before
they cost flash), at higher NVRAM cost — the paper fixes it at one
4 KiB page; this bench shows the sensitivity around that point.
"""

import pytest
from conftest import BENCH_SCALE

from repro.harness.runner import simulate_policy
from repro.traces import make_workload


@pytest.fixture(scope="module")
def trace():
    return make_workload("Fin1", scale=BENCH_SCALE)


@pytest.mark.parametrize("nvram_bytes", [2048, 4096, 16384])
def test_staging_buffer_size(trace, nvram_bytes, benchmark):
    cache = int(trace.stats().unique_pages * 0.10)
    r = benchmark.pedantic(
        lambda: simulate_policy(
            "kdd", trace, cache, seed=1, nvram_buffer_bytes=nvram_bytes
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    benchmark.extra_info["nvram_bytes"] = nvram_bytes
    benchmark.extra_info["delta_writes"] = r.stats.delta_writes
    benchmark.extra_info["ssd_writes"] = r.ssd_write_pages
    assert r.stats.delta_writes > 0


def test_bigger_buffer_fewer_delta_commits(trace, benchmark):
    cache = int(trace.stats().unique_pages * 0.10)

    def run_pair():
        small = simulate_policy("kdd", trace, cache, seed=1,
                                nvram_buffer_bytes=2048)
        large = simulate_policy("kdd", trace, cache, seed=1,
                                nvram_buffer_bytes=16384)
        return small, large

    small, large = benchmark.pedantic(run_pair, rounds=1, iterations=1,
                                      warmup_rounds=0)
    benchmark.extra_info["small_delta_writes"] = small.stats.delta_writes
    benchmark.extra_info["large_delta_writes"] = large.stats.delta_writes
    # a 16 KiB buffer coalesces more re-writes before committing, but
    # commits happen in page units either way; the commit count per
    # staged byte must not grow
    assert large.stats.delta_writes <= small.stats.delta_writes * 1.05
