"""Extension bench: hot-mirroring tiers vs KDD on the same write stream.

HotMirroring/AutoRAID (§V-A) avoid the small write by *placing* hot
data in RAID-1; KDD avoids it by *caching* old versions.  Both depend
on skew: the tier thrashes when the hot set outgrows the mirror, while
KDD degrades only to normal write-miss behaviour.
"""


from repro.cache import CacheConfig
from repro.core import KDD
from repro.raid import RAIDArray, RaidLevel, TieredRaid
from repro.traces import zipf_workload


def cold_array():
    return RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=16,
                     pages_per_disk=1 << 15)


def run_tiered(writes, mirror_pages):
    t = TieredRaid(cold_array(), mirror_pages=mirror_pages)
    for lba in writes:
        t.write(lba)
    t.demote_all()
    return t


def run_kdd(writes, cache_pages):
    raid = cold_array()
    kdd = KDD(CacheConfig(cache_pages=cache_pages, ways=64, seed=1), raid)
    for lba in writes:
        kdd.write(lba)
    kdd.finish()
    return kdd, raid


def test_skewed_stream_both_beat_rmw(benchmark):
    trace = zipf_workload(8000, 3000, alpha=1.2, read_ratio=0.0, seed=12)
    writes = [int(lba) for lba in trace.records["lba"]]

    def run_all():
        rmw = cold_array()
        for lba in writes:
            rmw.write(lba)
        tiered = run_tiered(writes, mirror_pages=1024)
        kdd, kdd_raid = run_kdd(writes, cache_pages=1024)
        return rmw, tiered, kdd_raid

    rmw, tiered, kdd_raid = benchmark.pedantic(run_all, rounds=1,
                                               iterations=1, warmup_rounds=0)
    benchmark.extra_info["rmw_ios"] = rmw.counters.total
    benchmark.extra_info["tiered_ios"] = tiered.member_ios
    benchmark.extra_info["kdd_ios"] = kdd_raid.counters.total
    assert tiered.member_ios < rmw.counters.total
    assert kdd_raid.counters.total < rmw.counters.total


def test_tier_thrashes_when_hot_set_outgrows_mirror(benchmark):
    """Uniform writes over a big footprint: the mirror migrates per write
    while KDD just takes normal misses."""
    trace = zipf_workload(4000, 8000, alpha=0.0, read_ratio=0.0, seed=12)
    writes = [int(lba) for lba in trace.records["lba"]]

    def run_both():
        tiered = run_tiered(writes, mirror_pages=64)
        rmw = cold_array()
        for lba in writes:
            rmw.write(lba)
        return tiered, rmw

    tiered, rmw = benchmark.pedantic(run_both, rounds=1, iterations=1,
                                     warmup_rounds=0)
    benchmark.extra_info["tiered_ios"] = tiered.member_ios
    benchmark.extra_info["rmw_ios"] = rmw.counters.total
    benchmark.extra_info["migrations"] = tiered.counters.migrations
    # migration overhead erases the tier's advantage on uniform streams
    assert tiered.member_ios > 0.9 * rmw.counters.total
