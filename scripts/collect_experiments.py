#!/usr/bin/env python
"""Regenerate every table/figure at the benchmark scales and dump the rows.

Used to produce the measured numbers recorded in EXPERIMENTS.md:

    python scripts/collect_experiments.py > experiments_raw.txt
"""

import time

from repro.harness.figures import (
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    table1,
    table2,
)

RUNS = [
    (table1, dict(scale=0.004)),
    (fig4, dict(scale=0.012)),
    (fig5, dict(scale=0.004)),
    (fig6, dict(scale=0.004)),
    (fig7, dict(scale=0.004)),
    (fig8, dict(scale=0.004)),
    (fig9, dict(scale=0.002, max_requests=6000)),
    (fig10, dict(total_requests=3000, working_set_pages=40_000, cache_pages=25_000)),
    (fig11, dict(total_requests=3000, working_set_pages=40_000, cache_pages=25_000)),
    (table2, dict(total_requests=2500, working_set_pages=30_000, cache_pages=18_000)),
]


def main() -> None:
    for fn, kwargs in RUNS:
        start = time.time()
        result = fn(**kwargs)
        print(result.render())
        print(f"({result.figure_id}: {time.time() - start:.1f}s, {kwargs})\n",
              flush=True)


if __name__ == "__main__":
    main()
